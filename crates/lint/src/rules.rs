//! The lint rules, run over the token stream of one file at a time.
//!
//! Rules are heuristic but *sound against the failure mode they police*:
//!
//! 1. **hash-iter** — iterating a `HashMap`/`HashSet` feeds nondeterministic
//!    order into whatever consumes it; with float accumulation downstream
//!    that breaks the bit-determinism contract of DESIGN.md §6. Iteration
//!    sites must either not exist or carry an explicit, reasoned waiver.
//! 2. **unsafe-confinement** — `unsafe` may only appear in the audited
//!    kernel modules, and every occurrence needs a nearby `SAFETY:` note.
//! 3. **wall-clock** — time and OS entropy make runs unreproducible, so
//!    they are confined to the bench crate.
//! 4. **panic-ratchet** — `.unwrap()`/`.expect(` counts per crate may not
//!    grow past the committed baseline (`lint-baseline.toml`).
//! 5. **hot-path-alloc** — allocation inside the hot-path function set
//!    (`forward_step`, `backward*`, `step`, `*_into`, `*_accumulate`, the
//!    sparse optimizer applies, ...) undoes the zero-alloc steady state the
//!    `tests/alloc_steady_state.rs` harness proves dynamically. Sites are
//!    counted per crate and ratcheted in `lint-baseline.toml`
//!    (`[hot-path-alloc]`), like the panic ratchet. Scope-aware: uses the
//!    brace-tree parser to attribute each site to its enclosing `fn`.
//! 6. **float-reduction-order** — `.sum::<f32/f64>()`, `.product()` and
//!    `fold` with a float accumulator outside the fixed-iteration-order
//!    allowlist can silently change summation order and break the bitwise
//!    1/2/4-thread equality `tests/determinism.rs` pins.
//! 7. **unused-waiver** — a `lint: allow` directive whose rule never fires
//!    on the covered lines is stale and must be deleted; stale waivers
//!    would silently swallow the next real regression at that site.
//!
//! Suppression convention (documented in DESIGN.md §7/§10): a comment
//! `// lint: allow(<rule>, reason="...")` on the offending line or the line
//! directly above waives rules 1, 3, 5 and 6 at that site. A waiver without
//! a reason is itself an error — the reason is the audit trail.

use crate::lexer::{Tok, Token};
use crate::parser::Tree;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

/// Rule identifiers; `Display` gives the names used in diagnostics and in
/// `lint: allow(...)` directives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    HashIter,
    UnsafeConfinement,
    WallClock,
    PanicRatchet,
    HotPathAlloc,
    FloatReductionOrder,
    UnusedWaiver,
    PanicFree,
    DeterminismCone,
    NoBlockingCone,
    Config,
    Directive,
    Lex,
    Parse,
}

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashIter => "hash-iter",
            Rule::UnsafeConfinement => "unsafe-confinement",
            Rule::WallClock => "wall-clock",
            Rule::PanicRatchet => "panic-ratchet",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::FloatReductionOrder => "float-reduction-order",
            Rule::UnusedWaiver => "unused-waiver",
            Rule::PanicFree => "panic-free",
            Rule::DeterminismCone => "determinism-cone",
            Rule::NoBlockingCone => "no-blocking-cone",
            Rule::Config => "lint-config",
            Rule::Directive => "lint-directive",
            Rule::Lex => "lex",
            Rule::Parse => "parse",
        }
    }
}

/// One finding, formatted as `path:line: [rule] message`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub path: String,
    pub line: u32,
    pub rule: Rule,
    pub message: String,
    /// For reachability rules: the full, unelided witness call chain
    /// (`root -> ... -> site fn`). The human `message` may elide long
    /// chains; emitters that want the whole path (`--github`, `--json`,
    /// `--sarif`) read this instead.
    pub witness: Option<String>,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// What a file is, as far as rule scoping is concerned.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Workspace-relative path with `/` separators, e.g.
    /// `crates/data/src/vocab.rs`.
    pub rel_path: String,
    /// Short crate key: `tensor`, `nn`, `core`, `models`, `metrics`,
    /// `data`, `bench`, `lint`, or `root` for the top-level crate.
    pub crate_key: String,
    /// Whole file is test code (integration tests, proptest modules).
    pub is_test_file: bool,
}

/// Crates whose non-test code the hash-iter rule applies to.
const HASH_ITER_CRATES: &[&str] = &["tensor", "nn", "core", "models", "metrics", "data", "serve"];

/// Modules allowed to contain `unsafe` (with SAFETY comments).
const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/tensor/src/pool.rs",
    // The SIMD matmul backends: packed-panel FMA microkernels are the one
    // place intrinsics buy the remaining 2-4x (DESIGN.md §13).
    "crates/tensor/src/kernels.rs",
    "crates/nn/src/embedding.rs",
    // The counting global allocator: `unsafe impl GlobalAlloc` is the only
    // way to observe heap traffic from safe Rust.
    "tests/alloc_steady_state.rs",
];

/// Crate keys exempt from the wall-clock/entropy rule.
const WALL_CLOCK_EXEMPT: &[&str] = &["bench"];

/// Identifiers that read wall-clock (or monotonic OS) time.
const CLOCK_IDENTS: &[&str] = &["Instant", "SystemTime", "UNIX_EPOCH"];

/// Identifiers that reach for OS entropy.
const ENTROPY_IDENTS: &[&str] = &[
    "OsRng",
    "thread_rng",
    "from_entropy",
    "getrandom",
    "RandomState",
];

/// Methods whose call can park the calling thread: mutex locks, condvar
/// waits, blocking channel receives. Feeds the `Blocks` effect
/// (`effects.rs`) and through it the no-blocking-cone rule.
const BLOCKING_METHODS: &[&str] = &[
    "lock",
    "wait",
    "wait_timeout",
    "wait_while",
    "recv",
    "recv_timeout",
];

/// Methods that iterate a hash container.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Maximum number of non-comment tokens the SAFETY-comment search walks
/// back over before giving up (covers attributes and `pub unsafe fn` heads
/// between the comment and the `unsafe` token).
const SAFETY_LOOKBACK_TOKENS: usize = 30;

/// Crates exempt from the hot-path-alloc rule: the bench crate measures
/// (and may allocate freely around the measured region) and the linter has
/// no training hot path.
pub(crate) const HOT_PATH_EXEMPT_CRATES: &[&str] = &["bench", "lint"];

/// Function names that ARE the hot path: exact matches.
const HOT_FN_EXACT: &[&str] = &[
    "step",
    "step_weights",
    "step_arch",
    "step_row",
    "train_batch",
    "apply_adam",
    "apply_sgd",
    "forward_step",
];

/// Hot-path name prefixes (`backward`, `backward_mlp`, `accumulate_grad*`).
const HOT_FN_PREFIXES: &[&str] = &["backward", "accumulate_grad"];

/// Hot-path name suffixes: the `_into`/`_inplace` buffer-reuse convention
/// and the `*_accumulate` gradient paths.
const HOT_FN_SUFFIXES: &[&str] = &["_into", "_accumulate", "_inplace"];

/// Crates exempt from the float-reduction-order rule (no training-path
/// reductions: bench aggregates its own timings, the linter has no floats).
const FLOAT_REDUCTION_EXEMPT_CRATES: &[&str] = &["bench", "lint"];

/// Modules that guarantee fixed iteration order for their float
/// reductions: the sequential tensor kernels (whose summation order is the
/// determinism *reference*, see DESIGN.md §6) and the calibration metric,
/// which reduces over pre-sorted slices.
pub(crate) const FLOAT_REDUCTION_ALLOWLIST: &[&str] = &[
    "crates/tensor/src/matrix.rs",
    "crates/tensor/src/kernels.rs",
    "crates/tensor/src/ops.rs",
    "crates/tensor/src/stats.rs",
    "crates/metrics/src/calibration.rs",
];

/// Per-file analysis output: diagnostics plus the ratchet tallies.
pub struct FileAnalysis {
    pub diagnostics: Vec<Diagnostic>,
    /// `.unwrap()` / `.expect(` sites in non-test code.
    pub unwrap_expect_count: usize,
    /// `unsafe` tokens in non-test code (ratcheted per crate via
    /// `[unsafe-sites]`, independently of the allowlist diagnostics).
    pub unsafe_count: usize,
    /// Unwaived allocation sites in hot-path fns (ratcheted per crate, so
    /// they are collected here rather than pushed into `diagnostics`).
    pub hot_path_alloc: Vec<Diagnostic>,
}

/// Everything the workspace pipeline needs per file: the prelude rules'
/// diagnostics plus the retained token stream, brace tree and waiver state
/// that the cross-file rules (derived hot set, panic-free reachability)
/// run over afterwards.
pub struct FileCtx {
    pub meta: FileMeta,
    pub tokens: Vec<Token>,
    /// Comment-free token indices.
    pub code: Vec<usize>,
    pub test_mask: Vec<bool>,
    pub(crate) allows: Allows,
    /// `None` on a brace-tree parse error (reported in `diagnostics`).
    pub tree: Option<Tree>,
    pub diagnostics: Vec<Diagnostic>,
    pub unwrap_expect_count: usize,
    pub unsafe_count: usize,
    /// Filled by [`hot_path_alloc_rule`], glob- or reachability-scoped.
    pub hot_path_alloc: Vec<Diagnostic>,
}

/// Runs the purely-local rules (1, 2, 3, 6, the unwrap tally) and parses
/// the brace tree, retaining everything the cross-file rules need. The
/// unused-waiver pass is NOT run here — it must come after every rule that
/// can mark a waiver used, which in workspace mode includes panic-free.
pub(crate) fn analyze_prelude(meta: &FileMeta, tokens: Vec<Token>) -> FileCtx {
    let code: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.tok, Tok::Comment(_)))
        .map(|(i, _)| i)
        .collect();
    let test_mask = test_mask(&tokens, &code, meta.is_test_file);
    let mut allows = collect_allows(meta, &tokens);
    // Directive errors (malformed / reason-less waivers) lead so rule
    // diagnostics keep their historical relative order within a file.
    let mut diagnostics = std::mem::take(&mut allows.errors);

    hash_iter_rule(meta, &tokens, &code, &test_mask, &allows, &mut diagnostics);
    let unsafe_count = unsafe_rule(meta, &tokens, &code, &test_mask, &mut diagnostics);
    wall_clock_rule(meta, &tokens, &code, &allows, &mut diagnostics);
    float_reduction_rule(meta, &tokens, &code, &test_mask, &allows, &mut diagnostics);
    let unwrap_expect_count = count_unwrap_expect(&tokens, &code, &test_mask);

    // The scope-aware rules need the brace tree; a parse failure is
    // reported like a lex failure (the file would not compile anyway) and
    // suppresses the tree-based rules and the unused-waiver check, whose
    // usage records would be incomplete.
    let tree = match Tree::parse(&tokens) {
        Ok(tree) => Some(tree),
        Err(e) => {
            diagnostics.push(Diagnostic {
                path: meta.rel_path.clone(),
                line: e.line,
                rule: Rule::Parse,
                witness: None,
                message: format!("brace-tree parse error: {}", e.message),
            });
            None
        }
    };

    FileCtx {
        meta: meta.clone(),
        tokens,
        code,
        test_mask,
        allows,
        tree,
        diagnostics,
        unwrap_expect_count,
        unsafe_count,
        hot_path_alloc: Vec::new(),
    }
}

impl FileCtx {
    /// Runs the unused-waiver pass and returns the finished per-file
    /// analysis, diagnostics sorted by line. Call after every rule that
    /// can mark a waiver used has run.
    pub(crate) fn finish(mut self) -> FileAnalysis {
        if self.tree.is_some() {
            self.allows.report_unused(&self.meta, &mut self.diagnostics);
        }
        self.diagnostics.sort_by_key(|d| d.line);
        FileAnalysis {
            diagnostics: self.diagnostics,
            unwrap_expect_count: self.unwrap_expect_count,
            unsafe_count: self.unsafe_count,
            hot_path_alloc: self.hot_path_alloc,
        }
    }
}

/// Runs every per-file rule standalone, with the hot-path set defined by
/// the name globs (the workspace pipeline in `lib.rs` instead derives the
/// set from call-graph reachability). The ratchet comparisons against the
/// baseline happen at workspace level, from the summed counts.
pub fn analyze_file(meta: &FileMeta, tokens: &[Token]) -> FileAnalysis {
    let mut ctx = analyze_prelude(meta, tokens.to_vec());
    if let Some(tree) = ctx.tree.take() {
        let mut sites = Vec::new();
        hot_path_alloc_rule(
            &ctx.meta,
            &ctx.tokens,
            &ctx.code,
            &tree,
            &ctx.test_mask,
            &ctx.allows,
            &mut sites,
        );
        ctx.hot_path_alloc = sites;
        ctx.tree = Some(tree);
    }
    ctx.finish()
}

/// Crate-public entry to [`test_mask`] for the effect-inference seeding
/// pass, which builds its own [`crate::effects::SeedSource`]s.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn test_mask_for(tokens: &[Token], code: &[usize], whole_file: bool) -> Vec<bool> {
    test_mask(tokens, code, whole_file)
}

/// Marks every token that lives inside `#[cfg(test)]` / `#[test]` items.
/// A file-level inner attribute `#![cfg(test)]` masks the whole file.
fn test_mask(tokens: &[Token], code: &[usize], whole_file: bool) -> Vec<bool> {
    let mut mask = vec![whole_file; tokens.len()];
    if whole_file {
        return mask;
    }
    let n = code.len();
    let tok = |ci: usize| &tokens[code[ci]].tok;
    // Leading inner attributes: `#![...]` only appears at the head of the
    // file (module-level inner attributes in nested mods are not used in
    // this workspace), so scanning the prefix is enough.
    let mut head = 0;
    while head + 2 < n
        && *tok(head) == Tok::Punct('#')
        && *tok(head + 1) == Tok::Punct('!')
        && *tok(head + 2) == Tok::Punct('[')
    {
        let mut depth = 0usize;
        let mut j = head + 2;
        let mut attr_head: Option<&str> = None;
        let mut is_test_attr = false;
        while j < n {
            match tok(j) {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Ident(name) => {
                    if attr_head.is_none() {
                        attr_head = Some(name);
                    }
                    if name == "test" && matches!(attr_head, Some("test") | Some("cfg")) {
                        is_test_attr = true;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if is_test_attr {
            return vec![true; tokens.len()];
        }
        head = j + 1;
    }
    let mut ci = 0;
    while ci < n {
        if *tok(ci) != Tok::Punct('#') || ci + 1 >= n || *tok(ci + 1) != Tok::Punct('[') {
            ci += 1;
            continue;
        }
        // Collect the attribute's tokens up to the matching ']'.
        let attr_start = ci;
        let mut depth = 0usize;
        let mut j = ci + 1;
        let mut is_test_attr = false;
        let mut attr_head: Option<&str> = None;
        while j < n {
            match tok(j) {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Ident(name) => {
                    if attr_head.is_none() {
                        attr_head = Some(name);
                    }
                    // `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ...))]`,
                    // but not `#[cfg(feature = "test-utils")]` — the bare
                    // ident `test` only appears as a predicate.
                    if name == "test" && matches!(attr_head, Some("test") | Some("cfg")) {
                        is_test_attr = true;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if !is_test_attr {
            ci = j + 1;
            continue;
        }
        // Skip any further attributes, then span the annotated item: up to
        // the matching '}' of its first top-level brace, or a ';' for
        // brace-less items (`#[cfg(test)] use ...;`, `mod tests;`).
        let mut k = j + 1;
        while k + 1 < n && *tok(k) == Tok::Punct('#') && *tok(k + 1) == Tok::Punct('[') {
            let mut d = 0usize;
            k += 1;
            while k < n {
                match tok(k) {
                    Tok::Punct('[') => d += 1,
                    Tok::Punct(']') => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        let mut brace_depth = 0usize;
        let end;
        loop {
            if k >= n {
                end = n - 1;
                break;
            }
            match tok(k) {
                Tok::Punct('{') => brace_depth += 1,
                Tok::Punct('}') => {
                    brace_depth = brace_depth.saturating_sub(1);
                    if brace_depth == 0 {
                        end = k;
                        break;
                    }
                }
                Tok::Punct(';') if brace_depth == 0 => {
                    end = k;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        for &ti in &code[attr_start..=end.min(n - 1)] {
            mask[ti] = true;
        }
        ci = end + 1;
    }
    mask
}

/// Parsed `lint: allow` directives.
///
/// `suppressed` maps rule name -> covered line -> the directive's own line
/// (a directive covers its line and the next). Suppression hits are
/// recorded in `used` so that, after every rule has run, any directive
/// that never suppressed anything is flagged by the unused-waiver rule.
/// `used` is interior-mutable because the rules hold `&Allows`.
pub(crate) struct Allows {
    suppressed: BTreeMap<&'static str, BTreeMap<u32, u32>>,
    /// Every well-formed directive, as (rule name, directive line).
    directives: Vec<(&'static str, u32)>,
    used: RefCell<BTreeSet<(&'static str, u32)>>,
    errors: Vec<Diagnostic>,
}

impl Allows {
    /// Is `rule` waived at `line`? A hit marks the directive as used.
    pub(crate) fn is_suppressed(&self, rule: Rule, line: u32) -> bool {
        let Some(&directive_line) = self.suppressed.get(rule.name()).and_then(|m| m.get(&line))
        else {
            return false;
        };
        self.used.borrow_mut().insert((rule.name(), directive_line));
        true
    }

    /// Flags every directive whose rule never fired on a covered line.
    fn report_unused(&self, meta: &FileMeta, diagnostics: &mut Vec<Diagnostic>) {
        let used = self.used.borrow();
        for &(rule_key, line) in &self.directives {
            if used.contains(&(rule_key, line)) {
                continue;
            }
            diagnostics.push(Diagnostic {
                path: meta.rel_path.clone(),
                line,
                rule: Rule::UnusedWaiver,
                witness: None,
                message: format!(
                    "waiver for `{rule_key}` never fires on this line or the next — delete \
                     it (a stale waiver would silently swallow the next real regression \
                     at this site)"
                ),
            });
        }
    }
}

fn collect_allows(meta: &FileMeta, tokens: &[Token]) -> Allows {
    let mut suppressed: BTreeMap<&'static str, BTreeMap<u32, u32>> = BTreeMap::new();
    let mut directives = Vec::new();
    let mut directive_lines: BTreeSet<u32> = BTreeSet::new();
    let mut errors = Vec::new();
    for t in tokens {
        let Tok::Comment(text) = &t.tok else { continue };
        // A directive must START the comment (`// lint: allow(...)`); prose
        // that merely mentions the convention mid-sentence is not one.
        let body = text
            .trim_start_matches('/')
            .trim_start_matches('!')
            .trim_start();
        let Some(rest) = body.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(args) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.split(')').next())
        else {
            errors.push(Diagnostic {
                path: meta.rel_path.clone(),
                line: t.line,
                rule: Rule::Directive,
                witness: None,
                message: "malformed lint directive; expected `lint: allow(<rule>, reason=\"...\")`"
                    .to_string(),
            });
            continue;
        };
        let mut parts = args.splitn(2, ',');
        let rule_name = parts.next().unwrap_or("").trim();
        let reason = parts.next().unwrap_or("").trim();
        let known = match rule_name {
            "hash-iter" => Some(Rule::HashIter.name()),
            "wall-clock" => Some(Rule::WallClock.name()),
            "hot-path-alloc" => Some(Rule::HotPathAlloc.name()),
            "float-reduction-order" => Some(Rule::FloatReductionOrder.name()),
            "panic-free" => Some(Rule::PanicFree.name()),
            "determinism-cone" => Some(Rule::DeterminismCone.name()),
            "no-blocking-cone" => Some(Rule::NoBlockingCone.name()),
            _ => None,
        };
        let Some(rule_key) = known else {
            errors.push(Diagnostic {
                path: meta.rel_path.clone(),
                line: t.line,
                rule: Rule::Directive,
                witness: None,
                message: format!(
                    "unknown or non-waivable rule `{rule_name}` in lint directive (waivable: \
                     hash-iter, wall-clock, hot-path-alloc, float-reduction-order, panic-free, \
                     determinism-cone, no-blocking-cone)"
                ),
            });
            continue;
        };
        let has_reason = reason
            .strip_prefix("reason=\"")
            .map(|r| r.trim_end_matches('"').trim())
            .is_some_and(|r| !r.is_empty());
        if !has_reason {
            errors.push(Diagnostic {
                path: meta.rel_path.clone(),
                line: t.line,
                rule: Rule::Directive,
                witness: None,
                message: format!(
                    "lint: allow({rule_key}) without a reason — add reason=\"...\" \
                     explaining why the site is order-independent"
                ),
            });
            continue;
        }
        directive_lines.insert(t.line);
        directives.push((rule_key, t.line));
    }
    // A directive covers its own line and the first *non-directive* line
    // below it, stacking through any adjacent directive lines in between —
    // so two waivers for different rules can sit on consecutive comment
    // lines above one shared site (e.g. a `lock()` that needs both a
    // panic-free and a no-blocking-cone waiver).
    for &(rule_key, line) in &directives {
        let entry = suppressed.entry(rule_key).or_default();
        entry.insert(line, line);
        let mut covered = line + 1;
        while directive_lines.contains(&covered) {
            entry.insert(covered, line);
            covered += 1;
        }
        entry.insert(covered, line);
    }
    Allows {
        suppressed,
        directives,
        used: RefCell::new(BTreeSet::new()),
        errors,
    }
}

/// Code-index ranges (inclusive, in `code` space) of every `fn` body.
/// Where-clauses cannot contain `{`, so the first brace after the `fn`
/// keyword opens the body; a `;` first means a bodiless declaration.
fn fn_spans(tokens: &[Token], code: &[usize]) -> Vec<(usize, usize)> {
    let n = code.len();
    let tok = |ci: usize| &tokens[code[ci]].tok;
    let mut spans = Vec::new();
    for ci in 0..n {
        if !matches!(tok(ci), Tok::Ident(s) if s == "fn") {
            continue;
        }
        // `fn` must introduce a named item — this skips `Fn(...)` bounds
        // and `fn(...)` pointer types, which have no name after `fn`.
        if ci + 1 >= n || !matches!(tok(ci + 1), Tok::Ident(_)) {
            continue;
        }
        let mut j = ci + 1;
        let mut open = None;
        while j < n {
            match tok(j) {
                Tok::Punct('{') => {
                    open = Some(j);
                    break;
                }
                Tok::Punct(';') => break,
                _ => j += 1,
            }
        }
        let Some(open) = open else { continue };
        let mut depth = 0usize;
        let mut k = open;
        while k < n {
            match tok(k) {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        spans.push((ci, k.min(n - 1)));
    }
    spans
}

/// Identifiers bound (or typed) as `HashMap`/`HashSet`, each with the span
/// of its enclosing fn (`None` = item scope: struct fields, statics).
/// Scoping to the enclosing fn stops a `counts: &HashMap` parameter in one
/// function from tainting a `counts: Vec<HashMap>` local in another; within
/// a function the tracking is still flow-insensitive, which only
/// over-approximates (stricter lint, never unsound).
struct HashBindings {
    by_name: BTreeMap<String, Vec<Option<(usize, usize)>>>,
}

impl HashBindings {
    fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// Is `name` hash-bound at code index `site`?
    fn is_bound_at(&self, name: &str, site: usize) -> bool {
        self.by_name.get(name).is_some_and(|spans| {
            spans
                .iter()
                .any(|s| s.is_none_or(|(a, b)| a <= site && site <= b))
        })
    }
}

/// Collects hash-container bindings: `name: [&][mut] [path::]HashMap<...>`
/// annotations (let bindings, fn params, struct fields) and
/// `let [mut] name = HashMap::new()`-style initialisations.
fn hash_bound_idents(tokens: &[Token], code: &[usize]) -> HashBindings {
    let n = code.len();
    let tok = |ci: usize| &tokens[code[ci]].tok;
    let spans = fn_spans(tokens, code);
    let innermost = |site: usize| -> Option<(usize, usize)> {
        spans
            .iter()
            .filter(|&&(a, b)| a <= site && site <= b)
            .max_by_key(|&&(a, _)| a)
            .copied()
    };
    let mut out = HashBindings {
        by_name: BTreeMap::new(),
    };
    let mut bind = |name: &str, site: usize| {
        out.by_name
            .entry(name.to_string())
            .or_default()
            .push(innermost(site));
    };
    let is_hash_ty = |name: &str| name == "HashMap" || name == "HashSet";
    for ci in 0..n {
        // Pattern A: Ident ':' <type path ending in HashMap/HashSet>
        if let Tok::Ident(name) = tok(ci) {
            if ci + 2 < n && *tok(ci + 1) == Tok::Punct(':') {
                // Skip `&`, `&&`, `mut`, lifetimes before the path.
                let mut j = ci + 2;
                while j < n {
                    match tok(j) {
                        Tok::Punct('&') | Tok::Lifetime(_) => j += 1,
                        Tok::Ident(k) if k == "mut" => j += 1,
                        _ => break,
                    }
                }
                // Walk the path `a::b::HashMap` up to `<`, `(`, etc.
                let mut last_seg: Option<&str> = None;
                while j < n {
                    match tok(j) {
                        Tok::Ident(seg) => {
                            last_seg = Some(seg);
                            j += 1;
                        }
                        Tok::Punct(':') if j + 1 < n && *tok(j + 1) == Tok::Punct(':') => {
                            j += 2;
                        }
                        _ => break,
                    }
                }
                if last_seg.is_some_and(is_hash_ty) {
                    bind(name, ci);
                }
            }
        }
        // Pattern B: `let [mut] name = [path::]Hash{Map,Set}::...`
        if *tok(ci) == Tok::Ident("let".to_string()) {
            let mut j = ci + 1;
            if j < n && *tok(j) == Tok::Ident("mut".to_string()) {
                j += 1;
            }
            let Tok::Ident(name) = tok(j) else { continue };
            if j + 1 >= n || *tok(j + 1) != Tok::Punct('=') {
                continue;
            }
            let mut k = j + 2;
            let mut last_seg: Option<&str> = None;
            while k < n {
                match tok(k) {
                    Tok::Ident(seg) => {
                        if is_hash_ty(seg) {
                            last_seg = Some(seg);
                        }
                        k += 1;
                        // Only look at the head of the initialiser.
                        if !matches!(tok(k), Tok::Punct(':')) {
                            break;
                        }
                    }
                    Tok::Punct(':') if k + 1 < n && *tok(k + 1) == Tok::Punct(':') => k += 2,
                    _ => break,
                }
            }
            if last_seg.is_some() {
                bind(name, j);
            }
        }
    }
    out
}

/// One hash-container iteration site: the receiver identifier's code
/// index, its name, and how it iterates (`.iter()`, `for-in`).
pub(crate) struct HashIterSite {
    pub ci: usize,
    pub name: String,
    pub how: String,
}

/// Hash-container iteration sites, before crate/test/waiver policy.
/// Reported at the receiver's code index so an allow directive on the
/// line above covers a multiline method chain.
pub(crate) fn hash_iter_sites(tokens: &[Token], code: &[usize]) -> Vec<HashIterSite> {
    let bindings = hash_bound_idents(tokens, code);
    if bindings.is_empty() {
        return Vec::new();
    }
    let n = code.len();
    let tok = |ci: usize| &tokens[code[ci]].tok;
    let mut out = Vec::new();
    for ci in 0..n {
        // `name.iter()` and friends.
        if let Tok::Ident(name) = tok(ci) {
            if bindings.is_bound_at(name, ci)
                && ci + 3 < n
                && *tok(ci + 1) == Tok::Punct('.')
                && matches!(tok(ci + 2), Tok::Ident(m) if HASH_ITER_METHODS.contains(&m.as_str()))
                && *tok(ci + 3) == Tok::Punct('(')
            {
                let Tok::Ident(m) = tok(ci + 2) else {
                    unreachable!()
                };
                out.push(HashIterSite {
                    ci,
                    name: name.clone(),
                    how: format!(".{m}()"),
                });
            }
        }
        // `for pat in [&][mut] name {`.
        if *tok(ci) == Tok::Ident("for".to_string()) {
            // Find the `in` belonging to this `for` (patterns cannot
            // contain the `in` keyword).
            let mut j = ci + 1;
            let mut found_in = None;
            while j < n && j - ci < 64 {
                match tok(j) {
                    Tok::Ident(k) if k == "in" => {
                        found_in = Some(j);
                        break;
                    }
                    Tok::Punct('{') | Tok::Punct(';') => break,
                    _ => j += 1,
                }
            }
            let Some(in_ci) = found_in else { continue };
            let mut k = in_ci + 1;
            while k < n {
                match tok(k) {
                    Tok::Punct('&') => k += 1,
                    Tok::Ident(m) if m == "mut" => k += 1,
                    _ => break,
                }
            }
            if let Tok::Ident(name) = tok(k) {
                if bindings.is_bound_at(name, k) && k + 1 < n && *tok(k + 1) == Tok::Punct('{') {
                    out.push(HashIterSite {
                        ci: k,
                        name: name.clone(),
                        how: "for-in".to_string(),
                    });
                }
            }
        }
    }
    out
}

fn hash_iter_rule(
    meta: &FileMeta,
    tokens: &[Token],
    code: &[usize],
    test_mask: &[bool],
    allows: &Allows,
    diagnostics: &mut Vec<Diagnostic>,
) {
    if !HASH_ITER_CRATES.contains(&meta.crate_key.as_str()) {
        return;
    }
    for site in hash_iter_sites(tokens, code) {
        let l = tokens[code[site.ci]].line;
        if test_mask[code[site.ci]] || allows.is_suppressed(Rule::HashIter, l) {
            continue;
        }
        let (name, how) = (&site.name, &site.how);
        diagnostics.push(Diagnostic {
            path: meta.rel_path.clone(),
            line: l,
            rule: Rule::HashIter,
            witness: None,
            message: format!(
                "iteration over hash container `{name}` ({how}): order depends on the hash \
                 seed and can break bit-determinism; sort the keys first or waive with \
                 `// lint: allow(hash-iter, reason=\"...\")`"
            ),
        });
    }
}

/// Returns the number of `unsafe` tokens in non-test code, which feeds
/// the per-crate `[unsafe-sites]` ratchet: every new site shows up as a
/// ceiling bump even inside an allowlisted module.
fn unsafe_rule(
    meta: &FileMeta,
    tokens: &[Token],
    code: &[usize],
    test_mask: &[bool],
    diagnostics: &mut Vec<Diagnostic>,
) -> usize {
    let allowlisted = UNSAFE_ALLOWLIST.contains(&meta.rel_path.as_str());
    let mut count = 0usize;
    for (pos, &ti) in code.iter().enumerate() {
        if tokens[ti].tok != Tok::Ident("unsafe".to_string()) {
            continue;
        }
        if !test_mask[ti] {
            count += 1;
        }
        if !allowlisted {
            diagnostics.push(Diagnostic {
                path: meta.rel_path.clone(),
                line: tokens[ti].line,
                rule: Rule::UnsafeConfinement,
                witness: None,
                message: format!(
                    "`unsafe` outside the audited kernel allowlist ({}); \
                     use the safe pool APIs (Pool::for_rows and friends) or move the \
                     code into an allowlisted module",
                    UNSAFE_ALLOWLIST.join(", ")
                ),
            });
            continue;
        }
        // Allowlisted module: still demand a SAFETY comment close by.
        // Walk the raw token stream backwards from the `unsafe`, giving up
        // after SAFETY_LOOKBACK_TOKENS non-comment tokens.
        let mut seen_code = 0usize;
        let mut found = false;
        let mut i = ti;
        while i > 0 && seen_code < SAFETY_LOOKBACK_TOKENS {
            i -= 1;
            match &tokens[i].tok {
                Tok::Comment(text) => {
                    if text.contains("SAFETY") || text.contains("# Safety") {
                        found = true;
                        break;
                    }
                }
                _ => seen_code += 1,
            }
        }
        let _ = pos;
        if !found {
            diagnostics.push(Diagnostic {
                path: meta.rel_path.clone(),
                line: tokens[ti].line,
                rule: Rule::UnsafeConfinement,
                witness: None,
                message: "`unsafe` without a preceding `// SAFETY:` comment justifying it"
                    .to_string(),
            });
        }
    }
    count
}

/// One token-level effect site before any policy (crate exemptions, test
/// masks, waivers). The collectors below are pure detectors shared by the
/// per-file rules and the interprocedural effect seeding (`effects.rs`) —
/// sharing them is what makes the effect summaries a
/// superset-by-construction of the per-file detections.
pub(crate) struct RawSite {
    /// Code index of the anchor token (its line is the diagnostic line).
    pub ci: usize,
    /// Display label: `Instant`, `.lock()`, `` `.sum::<f32>()` ``.
    pub label: String,
}

/// Clock-reading and entropy-reaching identifier sites, in token order.
pub(crate) fn clock_entropy_sites(
    tokens: &[Token],
    code: &[usize],
) -> (Vec<RawSite>, Vec<RawSite>) {
    let mut clock = Vec::new();
    let mut entropy = Vec::new();
    for (ci, &ti) in code.iter().enumerate() {
        let Tok::Ident(name) = &tokens[ti].tok else {
            continue;
        };
        if CLOCK_IDENTS.contains(&name.as_str()) {
            clock.push(RawSite {
                ci,
                label: name.clone(),
            });
        } else if ENTROPY_IDENTS.contains(&name.as_str()) {
            entropy.push(RawSite {
                ci,
                label: name.clone(),
            });
        }
    }
    (clock, entropy)
}

/// Thread-parking call sites: `.lock(`, condvar waits, blocking channel
/// receives, zero-argument `.join()` (thread join — `join(sep)` on slices
/// takes an argument and is excluded) and `sleep(...)` calls.
pub(crate) fn blocking_sites(tokens: &[Token], code: &[usize]) -> Vec<RawSite> {
    let n = code.len();
    let tok = |ci: usize| &tokens[code[ci]].tok;
    let mut out = Vec::new();
    for ci in 0..n {
        match tok(ci) {
            Tok::Punct('.') if ci + 2 < n && *tok(ci + 2) == Tok::Punct('(') => {
                let Tok::Ident(m) = tok(ci + 1) else { continue };
                if BLOCKING_METHODS.contains(&m.as_str()) {
                    out.push(RawSite {
                        ci: ci + 1,
                        label: format!(".{m}()"),
                    });
                } else if m == "join" && ci + 3 < n && *tok(ci + 3) == Tok::Punct(')') {
                    out.push(RawSite {
                        ci: ci + 1,
                        label: ".join()".to_string(),
                    });
                }
            }
            Tok::Ident(name)
                if name == "sleep" && ci + 1 < n && *tok(ci + 1) == Tok::Punct('(') =>
            {
                out.push(RawSite {
                    ci,
                    label: "sleep()".to_string(),
                });
            }
            _ => {}
        }
    }
    out
}

/// `unsafe` token sites (for the `Unsafe` effect; the confinement and
/// SAFETY-comment policy stays in [`unsafe_rule`]).
pub(crate) fn unsafe_token_sites(tokens: &[Token], code: &[usize]) -> Vec<RawSite> {
    code.iter()
        .enumerate()
        .filter(|&(_, &ti)| tokens[ti].tok == Tok::Ident("unsafe".to_string()))
        .map(|(ci, _)| RawSite {
            ci,
            label: "unsafe".to_string(),
        })
        .collect()
}

fn wall_clock_rule(
    meta: &FileMeta,
    tokens: &[Token],
    code: &[usize],
    allows: &Allows,
    diagnostics: &mut Vec<Diagnostic>,
) {
    if WALL_CLOCK_EXEMPT.contains(&meta.crate_key.as_str()) {
        return;
    }
    let (clock, entropy) = clock_entropy_sites(tokens, code);
    let mut sites: Vec<RawSite> = clock;
    sites.extend(entropy);
    sites.sort_by_key(|s| s.ci);
    for site in sites {
        let l = tokens[code[site.ci]].line;
        if allows.is_suppressed(Rule::WallClock, l) {
            continue;
        }
        let name = &site.label;
        diagnostics.push(Diagnostic {
            path: meta.rel_path.clone(),
            line: l,
            rule: Rule::WallClock,
            witness: None,
            message: format!(
                "`{name}` reads wall-clock time or OS entropy, which makes runs \
                 unreproducible; only the bench crate may do this (or waive with \
                 `// lint: allow(wall-clock, reason=\"...\")`)"
            ),
        });
    }
}

/// Is `name` in the configured hot-path function set?
pub fn is_hot_fn(name: &str) -> bool {
    HOT_FN_EXACT.contains(&name)
        || HOT_FN_PREFIXES.iter().any(|p| name.starts_with(p))
        || HOT_FN_SUFFIXES.iter().any(|s| name.ends_with(s))
}

/// Scope-aware rule 5: allocation tokens inside hot-path fn bodies.
///
/// The matched patterns are the allocating constructors and methods that
/// appear in this codebase (`Vec::new`, `vec![]`, `format!`, `.clone()`,
/// `.to_vec()`, `.collect()`, ...). The heuristic is syntactic — a
/// `.clone()` of a `Copy` type matches too — which is the point of the
/// waiver escape hatch: a non-allocating match gets a one-line reasoned
/// waiver, and everything else is a real allocation the ratchet counts.
///
/// This standalone path uses the name globs ([`is_hot_fn`]) for hot-set
/// membership (fixture analysis has no call graph); the whole-workspace
/// pass in `lib.rs` consumes the same [`alloc_sites`] seeds through the
/// effect index and polices the *derived* hot set instead.
pub(crate) fn hot_path_alloc_rule(
    meta: &FileMeta,
    tokens: &[Token],
    code: &[usize],
    tree: &Tree,
    test_mask: &[bool],
    allows: &Allows,
    sites: &mut Vec<Diagnostic>,
) {
    if HOT_PATH_EXEMPT_CRATES.contains(&meta.crate_key.as_str()) || meta.is_test_file {
        return;
    }
    for site in alloc_sites(tokens, code) {
        let raw = code[site.ci];
        if test_mask[raw] {
            continue;
        }
        let Some(fi) = tree.innermost_fn_at(raw) else {
            continue;
        };
        let f = &tree.fns[fi];
        if f.is_test || !is_hot_fn(&f.name) {
            continue;
        }
        let line = tokens[raw].line;
        if allows.is_suppressed(Rule::HotPathAlloc, line) {
            continue;
        }
        sites.push(hot_path_alloc_diag(meta, line, &site.label, &f.name));
    }
}

/// The shared `hot-path-alloc` diagnostic shape, used by both the
/// standalone glob path above and the derived-hot-set consumer in
/// `lib.rs` so the two stay byte-identical.
pub(crate) fn hot_path_alloc_diag(
    meta: &FileMeta,
    line: u32,
    label: &str,
    fn_name: &str,
) -> Diagnostic {
    Diagnostic {
        path: meta.rel_path.clone(),
        line,
        rule: Rule::HotPathAlloc,
        witness: None,
        message: format!(
            "`{label}` allocates inside hot-path fn `{fn_name}`; reuse a scratch buffer \
             (Workspace / `_into` convention) or waive with \
             `// lint: allow(hot-path-alloc, reason=\"...\")`"
        ),
    }
}

/// Allocation sites, before crate/test/hot-set/waiver policy. The
/// matched patterns are the allocating constructors and methods that
/// appear in this codebase; the heuristic is syntactic (a `.clone()` of
/// a `Copy` type matches too), which is the point of the waiver escape
/// hatch. `ci` is the anchor the diagnostic reports at (the method name
/// for `.clone()`-style calls, so a directive above a chain covers it).
pub(crate) fn alloc_sites(tokens: &[Token], code: &[usize]) -> Vec<RawSite> {
    let n = code.len();
    let tok = |ci: usize| &tokens[code[ci]].tok;
    // What allocates at code index `ci`, if anything: (display label,
    // code index the diagnostic anchors to).
    let alloc_at = |ci: usize| -> Option<(String, usize)> {
        match tok(ci) {
            // `Vec::new`, `Vec::with_capacity`, `Box::new`, `String::from`...
            Tok::Ident(ty) if matches!(ty.as_str(), "Vec" | "Box" | "String") => {
                if ci + 3 >= n || *tok(ci + 1) != Tok::Punct(':') || *tok(ci + 2) != Tok::Punct(':')
                {
                    return None;
                }
                let Tok::Ident(m) = tok(ci + 3) else {
                    return None;
                };
                let ctor = matches!(
                    (ty.as_str(), m.as_str()),
                    ("Vec" | "String", "new" | "with_capacity" | "from") | ("Box", "new")
                );
                ctor.then(|| (format!("{ty}::{m}"), ci))
            }
            // `vec![...]` / `format!(...)`.
            Tok::Ident(mac) if matches!(mac.as_str(), "vec" | "format") => {
                (ci + 1 < n && *tok(ci + 1) == Tok::Punct('!')).then(|| (format!("{mac}!"), ci))
            }
            // `.clone()`, `.to_vec()`, `.collect()` (with or without
            // turbofish), `.to_owned()`, `.to_string()`.
            Tok::Punct('.') => {
                let Some(Tok::Ident(m)) = (ci + 2 < n).then(|| tok(ci + 1)) else {
                    return None;
                };
                if !matches!(
                    m.as_str(),
                    "clone" | "to_vec" | "collect" | "to_owned" | "to_string"
                ) {
                    return None;
                }
                let called = *tok(ci + 2) == Tok::Punct('(')
                    || (*tok(ci + 2) == Tok::Punct(':')
                        && ci + 3 < n
                        && *tok(ci + 3) == Tok::Punct(':'));
                called.then(|| (format!(".{m}()"), ci + 1))
            }
            _ => None,
        }
    };
    let mut out = Vec::new();
    for ci in 0..n {
        if let Some((label, at)) = alloc_at(ci) {
            out.push(RawSite { ci: at, label });
        }
    }
    out
}

/// Rule 6: float reductions whose summation order is not structurally
/// fixed. `.sum::<f32/f64>()`, `.product()` and `fold` with a float
/// accumulator re-associate float addition if the iterator order ever
/// changes (rayon-style splitting, hash iteration, a refactor to chunked
/// traversal), which breaks the bitwise 1/2/4-thread equality that
/// `tests/determinism.rs` pins. Reductions belong in the allowlisted
/// fixed-order kernel modules; anywhere else the site needs a waiver.
/// Unordered-float-reduction sites, before crate/allowlist/test/waiver
/// policy. The label is the reduction shape (``​`.sum::<f32>()`​`` etc.);
/// the `ci` anchors at the method name, matching the old report anchor.
pub(crate) fn float_reduction_sites(tokens: &[Token], code: &[usize]) -> Vec<RawSite> {
    let n = code.len();
    let tok = |ci: usize| &tokens[code[ci]].tok;
    // The `f32`/`f64` of a turbofish `::<f32>` at `ci` (the first `:`).
    let turbofish_float = |ci: usize| -> Option<&str> {
        if ci + 3 >= n
            || *tok(ci) != Tok::Punct(':')
            || *tok(ci + 1) != Tok::Punct(':')
            || *tok(ci + 2) != Tok::Punct('<')
        {
            return None;
        }
        match tok(ci + 3) {
            Tok::Ident(ty) if ty == "f32" || ty == "f64" => Some(ty),
            _ => None,
        }
    };
    let mut out = Vec::new();
    let mut report = |ci: usize, what: String| {
        out.push(RawSite { ci, label: what });
    };
    for ci in 0..n {
        if *tok(ci) != Tok::Punct('.') || ci + 1 >= n {
            continue;
        }
        let Tok::Ident(m) = tok(ci + 1) else {
            continue;
        };
        match m.as_str() {
            // `.sum::<f32>()` / `.sum::<f64>()`; untyped `.sum()` is
            // overwhelmingly an integer reduction here and inference-typed
            // float sums are beyond a token heuristic.
            "sum" => {
                if let Some(ty) = turbofish_float(ci + 2) {
                    report(ci + 1, format!("`.sum::<{ty}>()`"));
                }
            }
            // `.product()` fires untyped too (every use in this codebase
            // multiplies probabilities); an integer turbofish exempts it.
            "product" => {
                if let Some(ty) = turbofish_float(ci + 2) {
                    report(ci + 1, format!("`.product::<{ty}>()`"));
                } else if ci + 2 < n && *tok(ci + 2) == Tok::Punct('(') {
                    report(ci + 1, "`.product()`".to_string());
                }
            }
            // `.fold(` with a float accumulator: a float literal or an
            // `f32::`/`f64::` constant in the first argument.
            "fold" => {
                if ci + 2 >= n || *tok(ci + 2) != Tok::Punct('(') {
                    continue;
                }
                let mut depth = 0usize;
                let mut float_acc = false;
                for j in ci + 2..n.min(ci + 18) {
                    match tok(j) {
                        Tok::Punct('(') => depth += 1,
                        Tok::Punct(')') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Tok::Punct(',') if depth == 1 => break,
                        Tok::Num { float: true } => float_acc = true,
                        Tok::Ident(ty) if ty == "f32" || ty == "f64" => float_acc = true,
                        _ => {}
                    }
                }
                if float_acc {
                    report(ci + 1, "`fold` with a float accumulator".to_string());
                }
            }
            _ => {}
        }
    }
    out
}

fn float_reduction_rule(
    meta: &FileMeta,
    tokens: &[Token],
    code: &[usize],
    test_mask: &[bool],
    allows: &Allows,
    diagnostics: &mut Vec<Diagnostic>,
) {
    if FLOAT_REDUCTION_EXEMPT_CRATES.contains(&meta.crate_key.as_str())
        || FLOAT_REDUCTION_ALLOWLIST.contains(&meta.rel_path.as_str())
        || meta.rel_path.starts_with("examples/")
        || meta.is_test_file
    {
        return;
    }
    for site in float_reduction_sites(tokens, code) {
        let raw = code[site.ci];
        if test_mask[raw] {
            continue;
        }
        let line = tokens[raw].line;
        if allows.is_suppressed(Rule::FloatReductionOrder, line) {
            continue;
        }
        let what = &site.label;
        diagnostics.push(Diagnostic {
            path: meta.rel_path.clone(),
            line,
            rule: Rule::FloatReductionOrder,
            witness: None,
            message: format!(
                "{what}: unordered float reduction can change summation order and break \
                 bitwise determinism across thread counts; move it into a fixed-order \
                 kernel module ({}) or waive with \
                 `// lint: allow(float-reduction-order, reason=\"...\")`",
                FLOAT_REDUCTION_ALLOWLIST.join(", ")
            ),
        });
    }
}

/// Macros that unconditionally abort the thread when they fire.
/// `debug_assert*` is deliberately absent: it compiles out of release
/// serving builds, so it cannot panic in production.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// One potential panic site, attributed to its enclosing fn. Whether it
/// *counts* is decided at workspace level: only sites in fns reachable
/// from a `[panic-free-roots]` entry are policed, and slice-index sites
/// only for roots flagged `+index` (see DESIGN.md §12).
pub(crate) struct PanicSite {
    /// Index into the file's `Tree::fns`.
    pub fn_idx: usize,
    pub line: u32,
    /// Display label: `assert_eq!`, `.unwrap()`, `slice index`.
    pub label: String,
    /// An unchecked `x[i]` / `x[a..b]` — counted only for `+index` roots.
    pub is_index: bool,
}

/// Scans one file for panic sites: the panic-macro family, `.unwrap()` /
/// `.expect(`, and unchecked slice indexing (`ident[`, `)[`, `][`). Test
/// code is skipped; waivers are applied by the caller (workspace level),
/// because a site is only "used" if some root actually reaches it.
pub(crate) fn panic_sites(
    tokens: &[Token],
    code: &[usize],
    tree: &Tree,
    test_mask: &[bool],
) -> Vec<PanicSite> {
    use crate::callgraph::NON_CALL_KEYWORDS;
    let n = code.len();
    let tok = |ci: usize| &tokens[code[ci]].tok;
    let mut out = Vec::new();
    let push = |ci: usize, label: String, is_index: bool, out: &mut Vec<PanicSite>| {
        let raw = code[ci];
        if test_mask[raw] {
            return;
        }
        let Some(fn_idx) = tree.innermost_fn_at(raw) else {
            return; // const exprs, attribute args: not on any call path
        };
        if tree.fns[fn_idx].is_test {
            return;
        }
        out.push(PanicSite {
            fn_idx,
            line: tokens[raw].line,
            label,
            is_index,
        });
    };
    for ci in 0..n {
        match tok(ci) {
            Tok::Ident(name)
                if PANIC_MACROS.contains(&name.as_str())
                    && ci + 1 < n
                    && *tok(ci + 1) == Tok::Punct('!') =>
            {
                push(ci, format!("{name}!"), false, &mut out);
            }
            Tok::Punct('.')
                if ci + 2 < n
                    && matches!(tok(ci + 1), Tok::Ident(m) if m == "unwrap" || m == "expect")
                    && *tok(ci + 2) == Tok::Punct('(') =>
            {
                let Tok::Ident(m) = tok(ci + 1) else {
                    continue;
                };
                push(ci + 1, format!(".{m}()"), false, &mut out);
            }
            Tok::Punct('[') if ci > 0 => {
                // An index expression's `[` directly follows the indexed
                // value: an identifier (`buf[i]`), a call (`row()[i]`), a
                // `?` propagation (`take(n)?[0]`) or another index
                // (`m[r][c]`). Types, slice patterns, attributes and
                // literals are preceded by other punctuation.
                let indexes = match tok(ci - 1) {
                    Tok::Ident(name) => !NON_CALL_KEYWORDS.contains(&name.as_str()),
                    Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('?') => true,
                    _ => false,
                };
                if indexes {
                    push(ci, "slice index".to_string(), true, &mut out);
                }
            }
            _ => {}
        }
    }
    out
}

fn count_unwrap_expect(tokens: &[Token], code: &[usize], test_mask: &[bool]) -> usize {
    let n = code.len();
    let tok = |ci: usize| &tokens[code[ci]].tok;
    let mut count = 0;
    for ci in 0..n.saturating_sub(2) {
        if *tok(ci) == Tok::Punct('.')
            && matches!(tok(ci + 1), Tok::Ident(m) if m == "unwrap" || m == "expect")
            && *tok(ci + 2) == Tok::Punct('(')
            && !test_mask[code[ci + 1]]
        {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn analyze(rel_path: &str, crate_key: &str, src: &str) -> FileAnalysis {
        let meta = FileMeta {
            rel_path: rel_path.to_string(),
            crate_key: crate_key.to_string(),
            is_test_file: false,
        };
        let tokens = lex(src).expect("fixture must lex");
        analyze_file(&meta, &tokens)
    }

    fn rules_of(a: &FileAnalysis) -> Vec<Rule> {
        a.diagnostics.iter().map(|d| d.rule).collect()
    }

    // ---- rule 1: hash-iter ------------------------------------------------

    #[test]
    fn hash_iteration_fires_on_typed_binding() {
        let src = r#"
            use std::collections::HashMap;
            pub fn f(ids: &[u32]) -> f64 {
                let mut counts: HashMap<u32, u64> = HashMap::new();
                let mut acc = 0.0;
                for (k, v) in counts.iter() { acc += *v as f64; }
                acc
            }
        "#;
        let a = analyze("crates/metrics/src/fixture.rs", "metrics", src);
        assert_eq!(rules_of(&a), vec![Rule::HashIter]);
    }

    #[test]
    fn hash_iteration_fires_on_for_in_and_values_and_params() {
        let src = r#"
            fn g(counts: &HashMap<u64, u32>) -> u64 {
                let mut s = 0;
                for (_, v) in counts { s += *v as u64; }
                s += counts.values().map(|v| *v as u64).sum::<u64>();
                s
            }
        "#;
        let a = analyze("crates/data/src/fixture.rs", "data", src);
        assert_eq!(rules_of(&a), vec![Rule::HashIter, Rule::HashIter]);
    }

    #[test]
    fn hash_iteration_allows_lookup_only_use() {
        let src = r#"
            fn h(map: &HashMap<String, u32>, weights: &[(String, u32)]) -> u32 {
                let total: u32 = weights.iter().map(|(_, w)| w).sum();
                *map.get("x").unwrap_or(&total)
            }
        "#;
        let a = analyze("crates/core/src/fixture.rs", "core", src);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    #[test]
    fn hash_iteration_respects_reasoned_allow() {
        let src = r#"
            fn f(counts: &HashMap<u32, u32>) -> Vec<u32> {
                // lint: allow(hash-iter, reason="collected then sorted")
                let mut kept: Vec<u32> = counts.iter().map(|(&k, _)| k).collect();
                kept.sort_unstable();
                kept
            }
        "#;
        let a = analyze("crates/data/src/fixture.rs", "data", src);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    #[test]
    fn hash_iteration_allow_without_reason_is_an_error() {
        let src = r#"
            fn f(counts: &HashMap<u32, u32>) -> usize {
                // lint: allow(hash-iter)
                counts.keys().count()
            }
        "#;
        let a = analyze("crates/data/src/fixture.rs", "data", src);
        // The directive error plus the (unsuppressed) iteration itself.
        assert!(
            rules_of(&a).contains(&Rule::Directive),
            "{:?}",
            a.diagnostics
        );
        assert!(
            rules_of(&a).contains(&Rule::HashIter),
            "{:?}",
            a.diagnostics
        );
    }

    #[test]
    fn hash_iteration_exempts_cfg_test_modules_and_other_crates() {
        let src = r#"
            pub fn real() -> u32 { 1 }
            #[cfg(test)]
            mod tests {
                use std::collections::HashSet;
                #[test]
                fn t() {
                    let mut seen: HashSet<u32> = HashSet::new();
                    for v in seen.iter() { let _ = v; }
                }
            }
        "#;
        let a = analyze("crates/models/src/fixture.rs", "models", src);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        // Same source in the bench crate is out of scope entirely.
        let b = analyze("crates/bench/src/fixture.rs", "bench", src);
        assert!(b.diagnostics.is_empty());
    }

    #[test]
    fn bindings_are_scoped_to_their_fn() {
        // `counts` is a HashMap in `a` but a slice in `b`; only `a`'s use
        // sites may be flagged, and `a` has none.
        let src = r#"
            fn a(counts: &HashMap<u32, u32>) -> u32 { *counts.get(&1).unwrap_or(&0) }
            fn b(counts: &[u32]) -> u32 { counts.iter().sum() }
        "#;
        let a = analyze("crates/data/src/fixture.rs", "data", src);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    #[test]
    fn struct_field_hashmaps_are_tracked_across_methods() {
        let src = r#"
            pub struct S { grads: HashMap<u32, f32> }
            impl S {
                fn sum(&self) -> f32 { self.grads.values().sum() }
            }
        "#;
        let a = analyze("crates/nn/src/fixture.rs", "nn", src);
        assert_eq!(rules_of(&a), vec![Rule::HashIter]);
    }

    #[test]
    fn vec_of_hashmaps_is_not_flagged() {
        let src = r#"
            fn f() {
                let mut lanes: Vec<HashMap<u32, u32>> = Vec::new();
                for lane in lanes.iter_mut() { lane.insert(1, 2); }
            }
        "#;
        let a = analyze("crates/nn/src/fixture.rs", "nn", src);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    // ---- rule 2: unsafe-confinement --------------------------------------

    #[test]
    fn unsafe_outside_allowlist_is_an_error() {
        let src = r#"
            pub fn f(p: *mut f32) {
                // SAFETY: even a comment does not make this module audited.
                unsafe { *p = 1.0; }
            }
        "#;
        let a = analyze("crates/core/src/fixture.rs", "core", src);
        assert_eq!(rules_of(&a), vec![Rule::UnsafeConfinement]);
    }

    #[test]
    fn unsafe_in_allowlisted_module_needs_safety_comment() {
        let bad = r#"
            pub fn f(p: *mut f32) {
                unsafe { *p = 1.0; }
            }
        "#;
        let a = analyze("crates/tensor/src/pool.rs", "tensor", bad);
        assert_eq!(rules_of(&a), vec![Rule::UnsafeConfinement]);

        let good = r#"
            pub fn f(p: *mut f32) {
                // SAFETY: p is valid and exclusively owned by this call.
                unsafe { *p = 1.0; }
            }
        "#;
        let b = analyze("crates/tensor/src/pool.rs", "tensor", good);
        assert!(b.diagnostics.is_empty(), "{:?}", b.diagnostics);
    }

    #[test]
    fn unsafe_inside_string_or_comment_is_ignored() {
        let src = r#"
            const DOC: &str = "never write unsafe code here";
            // this comment mentions unsafe too
            pub fn f() {}
        "#;
        let a = analyze("crates/core/src/fixture.rs", "core", src);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    #[test]
    fn doc_safety_section_counts_for_unsafe_fn_decl() {
        let src = r#"
            /// Does a raw write.
            ///
            /// # Safety
            /// Caller must own the pointee exclusively.
            #[inline]
            pub unsafe fn poke(p: *mut f32) {
                // SAFETY: contract forwarded to the caller.
                unsafe { *p = 0.0 }
            }
        "#;
        let a = analyze("crates/tensor/src/pool.rs", "tensor", src);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    // ---- rule 3: wall-clock ----------------------------------------------

    #[test]
    fn wall_clock_fires_outside_bench_and_not_inside() {
        let src = r#"
            use std::time::Instant;
            pub fn f() -> u64 { let t = Instant::now(); t.elapsed().as_nanos() as u64 }
        "#;
        let a = analyze("crates/core/src/fixture.rs", "core", src);
        assert_eq!(
            rules_of(&a),
            vec![Rule::WallClock, Rule::WallClock],
            "{:?}",
            a.diagnostics
        );
        let b = analyze("crates/bench/src/fixture.rs", "bench", src);
        assert!(b.diagnostics.is_empty());
    }

    #[test]
    fn entropy_sources_fire_and_allow_waives() {
        let src = r#"
            pub fn seed() -> u64 {
                // lint: allow(wall-clock, reason="one-shot diagnostic id, not used in training")
                let rng = rand::rngs::OsRng;
                0
            }
        "#;
        let a = analyze("crates/data/src/fixture.rs", "data", src);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        let src_no_allow = "pub fn seed() { let _ = rand::thread_rng(); }";
        let b = analyze("crates/data/src/fixture.rs", "data", src_no_allow);
        assert_eq!(rules_of(&b), vec![Rule::WallClock]);
    }

    // ---- rule 4: panic-ratchet -------------------------------------------

    #[test]
    fn unwrap_expect_counted_outside_tests_only() {
        let src = r#"
            pub fn f(x: Option<u32>) -> u32 {
                let a = x.unwrap();
                let b = x.expect("present");
                let c = x.unwrap_or(0); // not counted
                a + b + c
            }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); }
            }
        "#;
        let a = analyze("crates/core/src/fixture.rs", "core", src);
        assert_eq!(a.unwrap_expect_count, 2);
    }

    #[test]
    fn whole_test_files_count_zero() {
        let meta = FileMeta {
            rel_path: "tests/fixture.rs".to_string(),
            crate_key: "root".to_string(),
            is_test_file: true,
        };
        let tokens = lex("fn f(x: Option<u32>) -> u32 { x.unwrap() }").expect("lex");
        let a = analyze_file(&meta, &tokens);
        assert_eq!(a.unwrap_expect_count, 0);
    }

    // ---- rule 6: hot-path-alloc -------------------------------------------

    #[test]
    fn hot_path_alloc_fires_inside_hot_fns_only() {
        let src = r#"
            pub fn step(&mut self) {
                let scratch: Vec<f32> = Vec::new();
                let copy = self.adam.clone();
            }
            pub fn backward_grads(&mut self) {
                let rows = vec![0u32; 4];
            }
            pub fn gather_into(&self, out: &mut [f32]) {
                let msg = format!("x");
            }
            pub fn setup(&mut self) {
                // Not a hot-path name: allocation here is fine.
                let table: Vec<f32> = Vec::new();
                let s = String::from("boot");
            }
        "#;
        let a = analyze("crates/nn/src/fixture.rs", "nn", src);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        assert_eq!(a.hot_path_alloc.len(), 4, "{:?}", a.hot_path_alloc);
        assert!(a
            .hot_path_alloc
            .iter()
            .all(|d| d.rule == Rule::HotPathAlloc));
    }

    #[test]
    fn hot_path_alloc_respects_waiver_and_exemptions() {
        let waived = r#"
            pub fn step(&mut self) {
                // lint: allow(hot-path-alloc, reason="one-time lazy init")
                let scratch: Vec<f32> = Vec::new();
            }
        "#;
        let a = analyze("crates/nn/src/fixture.rs", "nn", waived);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        assert!(a.hot_path_alloc.is_empty(), "{:?}", a.hot_path_alloc);

        // The bench crate is exempt wholesale.
        let src = "pub fn step(&mut self) { let v: Vec<f32> = Vec::new(); }";
        let a = analyze("crates/bench/src/fixture.rs", "bench", src);
        assert!(a.hot_path_alloc.is_empty(), "{:?}", a.hot_path_alloc);

        // Test code inside a non-exempt crate is exempt too.
        let src = r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn step() { let v: Vec<f32> = Vec::new(); }
            }
        "#;
        let a = analyze("crates/nn/src/fixture.rs", "nn", src);
        assert!(a.hot_path_alloc.is_empty(), "{:?}", a.hot_path_alloc);
    }

    #[test]
    fn unused_hot_path_alloc_waiver_is_flagged() {
        let src = r#"
            pub fn step(&mut self) {
                // lint: allow(hot-path-alloc, reason="stale: nothing allocates below")
                let x = 1 + 1;
            }
        "#;
        let a = analyze("crates/nn/src/fixture.rs", "nn", src);
        assert_eq!(
            rules_of(&a),
            vec![Rule::UnusedWaiver],
            "{:?}",
            a.diagnostics
        );
    }

    // ---- rule 7: float-reduction-order ------------------------------------

    #[test]
    fn float_reduction_fires_on_float_sum_product_fold() {
        let src = r#"
            pub fn stats(xs: &[f32]) -> f32 {
                let s = xs.iter().sum::<f32>();
                let p = xs.iter().map(|&x| x as f64).product::<f64>();
                let f = xs.iter().fold(0.0f32, |acc, &x| acc + x);
                s + p as f32 + f
            }
        "#;
        let a = analyze("crates/core/src/fixture.rs", "core", src);
        assert_eq!(
            rules_of(&a),
            vec![
                Rule::FloatReductionOrder,
                Rule::FloatReductionOrder,
                Rule::FloatReductionOrder
            ],
            "{:?}",
            a.diagnostics
        );
    }

    #[test]
    fn float_reduction_skips_integer_and_untyped_sums() {
        let src = r#"
            pub fn counts(xs: &[u32]) -> u64 {
                let a = xs.iter().map(|&x| x as u64).sum::<u64>();
                let b: u64 = xs.iter().map(|&x| x as u64).sum();
                let c = xs.iter().map(|&x| x as u64).product::<u64>();
                let d = xs.iter().fold(0u64, |acc, &x| acc + x as u64);
                a + b + c + d
            }
        "#;
        let a = analyze("crates/core/src/fixture.rs", "core", src);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    #[test]
    fn float_reduction_respects_allowlist_waiver_and_test_code() {
        // Fixed-iteration-order modules are allowlisted wholesale.
        let src = "pub fn dot(xs: &[f32]) -> f32 { xs.iter().sum::<f32>() }";
        let a = analyze("crates/tensor/src/ops.rs", "tensor", src);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);

        // A reasoned waiver suppresses the diagnostic elsewhere.
        let waived = r#"
            pub fn total(xs: &[f32]) -> f32 {
                // lint: allow(float-reduction-order, reason="slice order is structural")
                xs.iter().sum::<f32>()
            }
        "#;
        let a = analyze("crates/core/src/fixture.rs", "core", waived);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);

        // Test code may reduce floats freely.
        let test_src = r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let s: f32 = [1.0f32].iter().sum::<f32>(); let _ = s; }
            }
        "#;
        let a = analyze("crates/core/src/fixture.rs", "core", test_src);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    // ---- stacked directives & the effect-seed collectors ------------------

    #[test]
    fn stacked_directives_cover_the_shared_site() {
        // One line trips two rules (hash-iter on `counts.iter()`,
        // float-reduction on `.sum::<f32>()`); two waivers stacked on
        // consecutive comment lines must both reach it, and both count as
        // used (no unused-waiver diagnostics).
        let src = r#"
            fn f(counts: &HashMap<u32, f32>) -> f32 {
                // lint: allow(hash-iter, reason="sum is order-independent up to float assoc, which the next waiver covers")
                // lint: allow(float-reduction-order, reason="validated against the sorted form in tests")
                counts.values().map(|v| *v).sum::<f32>()
            }
        "#;
        let a = analyze("crates/core/src/fixture.rs", "core", src);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    #[test]
    fn directive_coverage_does_not_stack_past_code_lines() {
        // A waiver two lines above the site, with a *code* line between,
        // must NOT cover it — only directive lines stack through.
        let src = r#"
            fn f(counts: &HashMap<u32, f32>) -> f32 {
                // lint: allow(float-reduction-order, reason="covers only the next line")
                let n = counts.len() as f32;
                counts.values().map(|v| *v).sum::<f32>() / n
            }
        "#;
        let a = analyze("crates/core/src/fixture.rs", "core", src);
        // The float reduction fires (uncovered), and the waiver is unused.
        assert!(
            rules_of(&a).contains(&Rule::FloatReductionOrder),
            "{:?}",
            a.diagnostics
        );
        assert!(
            rules_of(&a).contains(&Rule::UnusedWaiver),
            "{:?}",
            a.diagnostics
        );
    }

    #[test]
    fn blocking_sites_collect_locks_waits_recvs_sleeps_and_joins() {
        let src = r#"
            pub fn f(rx: &Receiver<u32>, h: std::thread::JoinHandle<()>) {
                let m = std::sync::Mutex::new(0u32);
                let _g = m.lock();
                let _v = rx.recv();
                let _t = rx.recv_timeout(d);
                std::thread::sleep(d);
                let _ = h.join();
            }
        "#;
        let tokens = lex(src).expect("lex");
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.tok, Tok::Comment(_)))
            .map(|(i, _)| i)
            .collect();
        let labels: Vec<String> = blocking_sites(&tokens, &code)
            .into_iter()
            .map(|s| s.label)
            .collect();
        assert_eq!(
            labels,
            vec![
                ".lock()",
                ".recv()",
                ".recv_timeout()",
                "sleep()",
                ".join()"
            ],
            "{labels:?}"
        );
    }

    #[test]
    fn join_with_arguments_is_not_a_blocking_site() {
        // `slice.join(", ")` is string joining, not thread joining; only
        // the zero-arg form counts.
        let src = r#"pub fn f(parts: &[String]) -> String { parts.join(", ") }"#;
        let tokens = lex(src).expect("lex");
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.tok, Tok::Comment(_)))
            .map(|(i, _)| i)
            .collect();
        assert!(blocking_sites(&tokens, &code).is_empty());
    }

    #[test]
    fn clock_and_entropy_sites_are_split_by_kind() {
        let src = r#"
            pub fn f() -> u64 {
                let t = std::time::Instant::now();
                let mut rng = rand::thread_rng();
                0
            }
        "#;
        let tokens = lex(src).expect("lex");
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.tok, Tok::Comment(_)))
            .map(|(i, _)| i)
            .collect();
        let (clock, entropy) = clock_entropy_sites(&tokens, &code);
        assert_eq!(clock.len(), 1, "{:?}", clock.len());
        assert_eq!(clock[0].label, "Instant");
        assert_eq!(entropy.len(), 1);
        assert_eq!(entropy[0].label, "thread_rng");
    }
}
