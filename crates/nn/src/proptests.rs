//! Property-based tests on the NN substrate: every layer's backward pass
//! must match finite differences for arbitrary shapes and inputs, the
//! optimizers must respect their invariants, and the compositional
//! embedding hashes must be pure, in-range functions of `(seed, id)`.

#![cfg(test)]

use crate::gradcheck::check_grad_matrix;
use crate::layers::{Dense, LayerNorm, Relu};
use crate::loss::bce_with_logits;
use crate::optim::{Adam, DenseOptimizer, Grda, GrdaConfig};
use crate::param::Parameter;
use crate::store::{double_hash_slots, qr_slots, HashScheme, HashedEmbedding};
use crate::Layer;
use optinter_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dense_input_gradient_matches_fd(
        seed in 0u64..1000,
        batch in 1usize..4,
        in_dim in 1usize..5,
        out_dim in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer = Dense::new(&mut rng, in_dim, out_dim);
        let x = optinter_tensor::init::uniform(&mut rng, batch, in_dim, -1.0, 1.0);
        // Scalar objective: sum of outputs.
        let y = layer.forward(&x);
        let ones = Matrix::filled(y.rows(), y.cols(), 1.0);
        let dx = layer.backward(&ones);
        let report = check_grad_matrix(&x, &dx, 1e-3, |xp| layer.forward(xp).sum());
        prop_assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn layernorm_input_gradient_matches_fd(
        seed in 0u64..1000,
        batch in 1usize..3,
        dim in 2usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer = LayerNorm::new(dim, 1e-2);
        // Weighted-sum objective to exercise off-diagonal terms.
        let weights = optinter_tensor::init::uniform(&mut rng, batch, dim, -1.0, 1.0);
        let x = optinter_tensor::init::uniform(&mut rng, batch, dim, -1.0, 1.0);
        let y = layer.forward(&x);
        let dy = weights.clone();
        let dx = layer.backward(&dy);
        let _ = y;
        let report = check_grad_matrix(&x, &dx, 1e-3, |xp| {
            let out = layer.forward(xp);
            out.hadamard(&weights).sum()
        });
        prop_assert!(report.passes(3e-2), "{report:?}");
    }

    #[test]
    fn relu_gradient_matches_fd(
        data in proptest::collection::vec(-2.0f32..2.0, 12),
    ) {
        // Avoid kink points at exactly zero.
        let data: Vec<f32> = data.into_iter()
            .map(|v| if v.abs() < 0.05 { v + 0.1 } else { v })
            .collect();
        let x = Matrix::from_vec(3, 4, data);
        let mut relu = Relu::new();
        let _ = relu.forward(&x);
        let dx = relu.backward(&Matrix::filled(3, 4, 1.0));
        let report = check_grad_matrix(&x, &dx, 1e-3, |xp| {
            let mut r = Relu::new();
            r.forward(xp).sum()
        });
        prop_assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn bce_gradient_matches_fd(
        logits in proptest::collection::vec(-4.0f32..4.0, 1..8),
    ) {
        let labels: Vec<f32> = logits.iter().enumerate()
            .map(|(i, _)| (i % 2) as f32).collect();
        let m = Matrix::from_vec(logits.len(), 1, logits);
        let (_, grad) = bce_with_logits(&m, &labels);
        let report = check_grad_matrix(&m, &grad, 1e-3, |mp| {
            bce_with_logits(mp, &labels).0
        });
        prop_assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn adam_moves_opposite_to_gradient_sign(
        g in proptest::collection::vec(-1.0f32..1.0, 4),
    ) {
        prop_assume!(g.iter().all(|v| v.abs() > 1e-3));
        let mut p = Parameter::new(Matrix::zeros(1, 4));
        p.grad = Matrix::from_vec(1, 4, g.clone());
        let mut opt = Adam::with_lr_eps(0.01, 1e-8);
        opt.begin_step();
        opt.step(&mut p, 0.0);
        for (w, gi) in p.value.as_slice().iter().zip(g.iter()) {
            prop_assert!(w * gi <= 0.0, "weight {w} moved along gradient {gi}");
        }
    }

    #[test]
    fn grda_never_flips_accumulator_sign_via_threshold(
        c in 0.0f32..1.0,
        mu in 0.1f32..0.9,
    ) {
        // Soft-thresholding shrinks towards zero but never crosses it.
        let mut p = Parameter::new(Matrix::from_vec(1, 2, vec![0.5, -0.5]));
        let mut opt = Grda::new(GrdaConfig { lr: 0.01, c, mu });
        for _ in 0..20 {
            p.grad = Matrix::zeros(1, 2);
            opt.begin_step();
            opt.step(&mut p, 0.0);
        }
        prop_assert!(p.value.get(0, 0) >= 0.0);
        prop_assert!(p.value.get(0, 1) <= 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Quotient-remainder slots partition the declared key space: every id
    // gets in-range slots and the pair reconstructs the id exactly
    // (injectivity — no two ids share both rows).
    #[test]
    fn qr_slots_partition_every_id(
        key_space in 1u32..200_000,
        bucket in 1u32..5_000,
        probe in 0u32..1_000_000,
    ) {
        let id = probe % key_space;
        let (q, r) = qr_slots(bucket, id);
        prop_assert!(q < key_space.div_ceil(bucket), "quotient {q} out of range");
        prop_assert!(r < bucket, "remainder {r} out of range");
        prop_assert_eq!(q * bucket + r, id, "slot pair must reconstruct the id");
    }

    // Double-hash slots are a pure function of `(seed, rows, id)` — same
    // inputs, same slots — and always land in `[0, rows)`.
    #[test]
    fn double_hash_slots_pure_and_in_range(
        seed in 0u64..u64::MAX,
        rows in 1u32..100_000,
        id in 0u32..u32::MAX,
    ) {
        let (s1, s2) = double_hash_slots(seed, rows, id);
        prop_assert!(s1 < rows && s2 < rows, "slots ({s1}, {s2}) outside {rows} rows");
        prop_assert_eq!((s1, s2), double_hash_slots(seed, rows, id), "hash must be pure");
    }

    // A hashed-store lookup is a pure function of `(init seed, hash seed,
    // id)`: two stores built identically return bitwise-equal embeddings,
    // and each equals the manual compose of its sub-table rows.
    #[test]
    fn hashed_lookup_is_pure_function_of_seed_and_id(
        init_seed in 0u64..1000,
        hash_seed in 0u64..u64::MAX,
        id in 0u32..300,
        qr in proptest::bool::ANY,
    ) {
        let scheme = if qr {
            HashScheme::QuotientRemainder { bucket: 19 }
        } else {
            HashScheme::DoubleHash { rows: 31 }
        };
        let mut a = HashedEmbedding::new(
            &mut StdRng::seed_from_u64(init_seed), 300, 4, scheme, hash_seed);
        let mut b = HashedEmbedding::new(
            &mut StdRng::seed_from_u64(init_seed), 300, 4, scheme, hash_seed);
        let flat = [id];
        let (mut out_a, mut out_b) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
        a.lookup_fields_into(&flat, 1, &mut out_a);
        b.lookup_fields_into(&flat, 1, &mut out_b);
        let (s1, s2) = a.slots(id);
        for d in 0..4 {
            prop_assert_eq!(out_a.row(0)[d].to_bits(), out_b.row(0)[d].to_bits());
            let want = a.table1().weight().row(s1 as usize)[d]
                * a.table2().weight().row(s2 as usize)[d];
            prop_assert_eq!(out_a.row(0)[d].to_bits(), want.to_bits());
        }
    }
}
