//! Property-based tests on the NN substrate: every layer's backward pass
//! must match finite differences for arbitrary shapes and inputs, and the
//! optimizers must respect their invariants.

#![cfg(test)]

use crate::gradcheck::check_grad_matrix;
use crate::layers::{Dense, LayerNorm, Relu};
use crate::loss::bce_with_logits;
use crate::optim::{Adam, DenseOptimizer, Grda, GrdaConfig};
use crate::param::Parameter;
use crate::Layer;
use optinter_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dense_input_gradient_matches_fd(
        seed in 0u64..1000,
        batch in 1usize..4,
        in_dim in 1usize..5,
        out_dim in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer = Dense::new(&mut rng, in_dim, out_dim);
        let x = optinter_tensor::init::uniform(&mut rng, batch, in_dim, -1.0, 1.0);
        // Scalar objective: sum of outputs.
        let y = layer.forward(&x);
        let ones = Matrix::filled(y.rows(), y.cols(), 1.0);
        let dx = layer.backward(&ones);
        let report = check_grad_matrix(&x, &dx, 1e-3, |xp| layer.forward(xp).sum());
        prop_assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn layernorm_input_gradient_matches_fd(
        seed in 0u64..1000,
        batch in 1usize..3,
        dim in 2usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer = LayerNorm::new(dim, 1e-2);
        // Weighted-sum objective to exercise off-diagonal terms.
        let weights = optinter_tensor::init::uniform(&mut rng, batch, dim, -1.0, 1.0);
        let x = optinter_tensor::init::uniform(&mut rng, batch, dim, -1.0, 1.0);
        let y = layer.forward(&x);
        let dy = weights.clone();
        let dx = layer.backward(&dy);
        let _ = y;
        let report = check_grad_matrix(&x, &dx, 1e-3, |xp| {
            let out = layer.forward(xp);
            out.hadamard(&weights).sum()
        });
        prop_assert!(report.passes(3e-2), "{report:?}");
    }

    #[test]
    fn relu_gradient_matches_fd(
        data in proptest::collection::vec(-2.0f32..2.0, 12),
    ) {
        // Avoid kink points at exactly zero.
        let data: Vec<f32> = data.into_iter()
            .map(|v| if v.abs() < 0.05 { v + 0.1 } else { v })
            .collect();
        let x = Matrix::from_vec(3, 4, data);
        let mut relu = Relu::new();
        let _ = relu.forward(&x);
        let dx = relu.backward(&Matrix::filled(3, 4, 1.0));
        let report = check_grad_matrix(&x, &dx, 1e-3, |xp| {
            let mut r = Relu::new();
            r.forward(xp).sum()
        });
        prop_assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn bce_gradient_matches_fd(
        logits in proptest::collection::vec(-4.0f32..4.0, 1..8),
    ) {
        let labels: Vec<f32> = logits.iter().enumerate()
            .map(|(i, _)| (i % 2) as f32).collect();
        let m = Matrix::from_vec(logits.len(), 1, logits);
        let (_, grad) = bce_with_logits(&m, &labels);
        let report = check_grad_matrix(&m, &grad, 1e-3, |mp| {
            bce_with_logits(mp, &labels).0
        });
        prop_assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn adam_moves_opposite_to_gradient_sign(
        g in proptest::collection::vec(-1.0f32..1.0, 4),
    ) {
        prop_assume!(g.iter().all(|v| v.abs() > 1e-3));
        let mut p = Parameter::new(Matrix::zeros(1, 4));
        p.grad = Matrix::from_vec(1, 4, g.clone());
        let mut opt = Adam::with_lr_eps(0.01, 1e-8);
        opt.begin_step();
        opt.step(&mut p, 0.0);
        for (w, gi) in p.value.as_slice().iter().zip(g.iter()) {
            prop_assert!(w * gi <= 0.0, "weight {w} moved along gradient {gi}");
        }
    }

    #[test]
    fn grda_never_flips_accumulator_sign_via_threshold(
        c in 0.0f32..1.0,
        mu in 0.1f32..0.9,
    ) {
        // Soft-thresholding shrinks towards zero but never crosses it.
        let mut p = Parameter::new(Matrix::from_vec(1, 2, vec![0.5, -0.5]));
        let mut opt = Grda::new(GrdaConfig { lr: 0.01, c, mu });
        for _ in 0..20 {
            p.grad = Matrix::zeros(1, 2);
            opt.begin_step();
            opt.step(&mut p, 0.0);
        }
        prop_assert!(p.value.get(0, 0) >= 0.0);
        prop_assert!(p.value.get(0, 1) <= 0.0);
    }
}
