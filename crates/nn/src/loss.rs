//! Training losses. The paper optimises mean binary cross-entropy / log-loss
//! over mini-batches (Eq. 13); we fuse it with the sigmoid (Eq. 12) for
//! numerical stability.

use optinter_tensor::{numerics, Matrix};

/// Fused sigmoid + mean binary-cross-entropy over a batch of logits.
///
/// `logits` has shape `[B, 1]`; `labels` has length `B` with values in
/// `{0.0, 1.0}`. Returns `(mean_loss, grad)` where `grad[i] =
/// (sigmoid(logit_i) - y_i) / B` — the gradient of the *mean* loss with
/// respect to each logit, ready to feed into the classifier backward pass.
pub fn bce_with_logits(logits: &Matrix, labels: &[f32]) -> (f32, Matrix) {
    let mut grad = Matrix::zeros(0, 0);
    let loss = bce_with_logits_into(logits, labels, &mut grad);
    (loss, grad)
}

/// [`bce_with_logits`] writing the gradient into a caller-owned buffer
/// (reshaped to `[B, 1]`) — the allocation-free form used by training loops.
pub fn bce_with_logits_into(logits: &Matrix, labels: &[f32], grad: &mut Matrix) -> f32 {
    assert_eq!(logits.cols(), 1, "bce_with_logits: logits must be [B, 1]");
    assert_eq!(
        logits.rows(),
        labels.len(),
        "bce_with_logits: batch size mismatch"
    );
    let b = labels.len();
    assert!(b > 0, "bce_with_logits: empty batch");
    let inv_b = 1.0 / b as f32;
    grad.reset(b, 1);
    let mut loss = 0.0f32;
    for (i, &y) in labels.iter().enumerate() {
        let z = logits.get(i, 0);
        loss += numerics::stable_bce(z, y);
        grad.set(i, 0, numerics::stable_bce_grad(z, y) * inv_b);
    }
    loss * inv_b
}

/// Predicted probabilities from a `[B, 1]` logit matrix.
pub fn probabilities(logits: &Matrix) -> Vec<f32> {
    assert_eq!(logits.cols(), 1, "probabilities: logits must be [B, 1]");
    (0..logits.rows())
        .map(|i| numerics::sigmoid(logits.get(i, 0)))
        .collect()
}

/// [`probabilities`] into a caller-owned buffer (cleared first) — the
/// allocation-free form the serving scorer uses. Applies the same
/// `sigmoid`, so outputs are bitwise-identical to the allocating form.
pub fn probabilities_into(logits: &Matrix, out: &mut Vec<f32>) {
    // lint: allow(panic-free, reason="logits come out of Mlp::forward_into as [B, 1]; the shape is fixed at scorer construction")
    assert_eq!(
        logits.cols(),
        1,
        "probabilities_into: logits must be [B, 1]"
    );
    out.clear();
    out.reserve(logits.rows());
    for i in 0..logits.rows() {
        out.push(numerics::sigmoid(logits.get(i, 0)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_logit_loss_is_ln2() {
        let logits = Matrix::zeros(4, 1);
        let labels = [0.0, 1.0, 0.0, 1.0];
        let (loss, grad) = bce_with_logits(&logits, &labels);
        assert!((loss - std::f32::consts::LN_2).abs() < 1e-6);
        // grad = (0.5 - y)/4
        assert!((grad.get(0, 0) - 0.125).abs() < 1e-6);
        assert!((grad.get(1, 0) + 0.125).abs() < 1e-6);
    }

    #[test]
    fn confident_correct_prediction_low_loss() {
        let logits = Matrix::from_rows(&[&[10.0], &[-10.0]]);
        let (loss, _) = bce_with_logits(&logits, &[1.0, 0.0]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn confident_wrong_prediction_high_loss() {
        let logits = Matrix::from_rows(&[&[10.0]]);
        let (loss, _) = bce_with_logits(&logits, &[0.0]);
        assert!(loss > 9.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Matrix::from_rows(&[&[0.7], &[-1.3], &[2.0]]);
        let labels = [1.0, 0.0, 0.0];
        let (_, grad) = bce_with_logits(&logits, &labels);
        crate::gradcheck::assert_grad_matches(&logits, &grad, 1e-3, 1e-2, |m| {
            bce_with_logits(m, &labels).0
        });
    }

    #[test]
    fn probabilities_into_matches_allocating_form_bitwise() {
        let logits = Matrix::from_rows(&[&[0.3], &[-1.7], &[42.0]]);
        let alloc = probabilities(&logits);
        let mut reused = vec![9.9f32; 8]; // stale contents must be cleared
        probabilities_into(&logits, &mut reused);
        assert_eq!(alloc.len(), reused.len());
        for (a, b) in alloc.iter().zip(reused.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn probabilities_are_sigmoids() {
        let logits = Matrix::from_rows(&[&[0.0], &[100.0]]);
        let p = probabilities(&logits);
        assert!((p[0] - 0.5).abs() < 1e-7);
        assert!(p[1] > 0.999);
    }
}
