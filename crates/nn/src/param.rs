//! Trainable parameters: a value matrix, its gradient accumulator, and
//! lazily-allocated optimizer state slots.

use optinter_tensor::Matrix;

/// A trainable parameter.
///
/// `grad` is accumulated by layer backward passes and consumed (then zeroed)
/// by an optimizer step. The `slot_a` / `slot_b` matrices are optimizer
/// scratch state — Adam uses them for the first and second moments, GRDA for
/// its dual accumulator — allocated on first use so cold parameters cost
/// nothing extra.
#[derive(Clone, Debug)]
pub struct Parameter {
    /// Current value.
    pub value: Matrix,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Matrix,
    /// Optimizer state slot A (Adam: first moment `m`; GRDA: accumulator `v`).
    pub slot_a: Option<Matrix>,
    /// Optimizer state slot B (Adam: second moment `v`).
    pub slot_b: Option<Matrix>,
}

impl Parameter {
    /// Wraps a value matrix into a parameter with a zeroed gradient.
    pub fn new(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Self {
            value,
            grad,
            slot_a: None,
            slot_b: None,
        }
    }

    /// A zero-initialised parameter of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::new(Matrix::zeros(rows, cols))
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Ensures both optimizer slots exist (zeroed, same shape as `value`).
    pub fn ensure_slots(&mut self) {
        let (r, c) = self.value.shape();
        if self.slot_a.is_none() {
            self.slot_a = Some(Matrix::zeros(r, c));
        }
        if self.slot_b.is_none() {
            self.slot_b = Some(Matrix::zeros(r, c));
        }
    }

    /// Drops optimizer state (used when re-training from scratch).
    pub fn reset_opt_state(&mut self) {
        self.slot_a = None;
        self.slot_b = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Parameter::new(Matrix::filled(2, 3, 1.5));
        assert_eq!(p.grad.shape(), (2, 3));
        assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn ensure_slots_allocates_once() {
        let mut p = Parameter::zeros(2, 2);
        assert!(p.slot_a.is_none());
        p.ensure_slots();
        assert!(p.slot_a.is_some() && p.slot_b.is_some());
        // Mutate then ensure again: state must persist.
        p.slot_a.as_mut().unwrap().set(0, 0, 9.0);
        p.ensure_slots();
        assert_eq!(p.slot_a.as_ref().unwrap().get(0, 0), 9.0);
    }

    #[test]
    fn reset_opt_state_clears_slots() {
        let mut p = Parameter::zeros(1, 1);
        p.ensure_slots();
        p.reset_opt_state();
        assert!(p.slot_a.is_none() && p.slot_b.is_none());
    }
}
