//! Finite-difference gradient checking.
//!
//! Every backward pass in the workspace is validated against central
//! finite differences through these helpers. They are `pub` (not
//! test-only) so downstream crates can gradient-check their own composite
//! models in their test suites.

use optinter_tensor::Matrix;

/// Result of a gradient check: the worst absolute and relative error seen.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// Maximum absolute difference between analytic and numeric gradients.
    pub max_abs_err: f32,
    /// Maximum relative difference (normalised by magnitudes + 1e-6).
    pub max_rel_err: f32,
}

impl GradCheckReport {
    /// True when both error measures are below `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_err < tol || self.max_rel_err < tol
    }
}

/// Checks an analytic gradient of a scalar function with respect to a
/// matrix, by central finite differences.
///
/// `f` must be a pure function of `x` (re-evaluable at perturbed points).
/// `analytic` is the claimed gradient `d f / d x`, same shape as `x`.
pub fn check_grad_matrix(
    x: &Matrix,
    analytic: &Matrix,
    eps: f32,
    mut f: impl FnMut(&Matrix) -> f32,
) -> GradCheckReport {
    assert_eq!(x.shape(), analytic.shape(), "gradcheck: shape mismatch");
    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    let mut xp = x.clone();
    for i in 0..x.len() {
        let orig = xp.as_slice()[i];
        xp.as_mut_slice()[i] = orig + eps;
        let fp = f(&xp);
        xp.as_mut_slice()[i] = orig - eps;
        let fm = f(&xp);
        xp.as_mut_slice()[i] = orig;
        let numeric = (fp - fm) / (2.0 * eps);
        let ana = analytic.as_slice()[i];
        let abs = (numeric - ana).abs();
        let rel = abs / (numeric.abs() + ana.abs() + 1e-6);
        if abs > max_abs {
            max_abs = abs;
        }
        if rel > max_rel {
            max_rel = rel;
        }
    }
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
    }
}

/// Checks an analytic gradient for a *subset of entries* of a parameter
/// that lives inside a model, by central finite differences.
///
/// Unlike [`check_grad_matrix`], the parameter is not handed over as a
/// standalone matrix: the caller supplies `get`/`set` accessors that reach
/// into the model and an `eval` closure that re-runs the scalar objective
/// with whatever state the parameter currently holds. This fits embedded
/// parameters such as the supernet's architecture logits `α`, where the
/// objective is a full forward pass and perturbing one logit requires
/// mutating the model in place. `set` must be exact (no side effects beyond
/// the entry), and `eval` must be deterministic between calls.
///
/// `entries` lists the `(row, col)` positions to probe; `analytic(row,
/// col)` returns the claimed gradient at each.
pub fn check_grad_entries(
    entries: &[(usize, usize)],
    eps: f32,
    mut analytic: impl FnMut(usize, usize) -> f32,
    mut get: impl FnMut(usize, usize) -> f32,
    mut set: impl FnMut(usize, usize, f32),
    mut eval: impl FnMut() -> f32,
) -> GradCheckReport {
    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for &(r, c) in entries {
        let orig = get(r, c);
        set(r, c, orig + eps);
        let fp = eval();
        set(r, c, orig - eps);
        let fm = eval();
        set(r, c, orig);
        let numeric = (fp - fm) / (2.0 * eps);
        let ana = analytic(r, c);
        let abs = (numeric - ana).abs();
        let rel = abs / (numeric.abs() + ana.abs() + 1e-6);
        if abs > max_abs {
            max_abs = abs;
        }
        if rel > max_rel {
            max_rel = rel;
        }
    }
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
    }
}

/// Convenience: asserts that the analytic gradient matches finite
/// differences within `tol`, panicking with a diagnostic otherwise.
pub fn assert_grad_matches(
    x: &Matrix,
    analytic: &Matrix,
    eps: f32,
    tol: f32,
    f: impl FnMut(&Matrix) -> f32,
) {
    let report = check_grad_matrix(x, analytic, eps, f);
    assert!(
        report.passes(tol),
        "gradient check failed: max_abs_err={} max_rel_err={} (tol {tol})",
        report.max_abs_err,
        report.max_rel_err
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_gradient_passes() {
        // f(x) = sum(x^2), grad = 2x.
        let x = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        let analytic = x.map(|v| 2.0 * v);
        let report = check_grad_matrix(&x, &analytic, 1e-3, |m| m.frob_sq());
        assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn wrong_gradient_fails() {
        let x = Matrix::from_rows(&[&[1.0, -2.0]]);
        let wrong = x.map(|v| 3.0 * v);
        let report = check_grad_matrix(&x, &wrong, 1e-3, |m| m.frob_sq());
        assert!(!report.passes(1e-2));
    }

    #[test]
    fn zero_function_zero_gradient() {
        let x = Matrix::filled(2, 2, 5.0);
        let analytic = Matrix::zeros(2, 2);
        let report = check_grad_matrix(&x, &analytic, 1e-3, |_| 7.0);
        assert!(report.max_abs_err < 1e-4);
    }

    #[test]
    fn entrywise_check_on_embedded_parameter() {
        // The parameter lives inside a "model" (here a plain matrix behind
        // a RefCell-free mutable binding); f(x) = sum(x^3), grad = 3x^2.
        let mut x = Matrix::from_rows(&[&[0.8, -1.2], &[0.4, 1.5]]);
        let entries = [(0usize, 0usize), (0, 1), (1, 0), (1, 1)];
        let snapshot = x.clone();
        let report = {
            let cell = std::cell::RefCell::new(&mut x);
            check_grad_entries(
                &entries,
                1e-3,
                |r, c| {
                    let v = snapshot.get(r, c);
                    3.0 * v * v
                },
                |r, c| cell.borrow().get(r, c),
                |r, c, v| cell.borrow_mut().set(r, c, v),
                || cell.borrow().as_slice().iter().map(|v| v * v * v).sum(),
            )
        };
        assert!(report.passes(1e-2), "{report:?}");
        // The probe must restore the parameter exactly.
        assert_eq!(x.as_slice(), snapshot.as_slice());
    }

    #[test]
    fn entrywise_check_rejects_wrong_gradient() {
        let mut x = Matrix::from_rows(&[&[1.0, 2.0]]);
        let entries = [(0usize, 0usize), (0, 1)];
        let report = {
            let cell = std::cell::RefCell::new(&mut x);
            check_grad_entries(
                &entries,
                1e-3,
                |_, _| 100.0,
                |r, c| cell.borrow().get(r, c),
                |r, c, v| cell.borrow_mut().set(r, c, v),
                || cell.borrow().frob_sq(),
            )
        };
        assert!(!report.passes(1e-2));
    }
}
