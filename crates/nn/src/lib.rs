//! Neural-network substrate with manual reverse-mode backpropagation.
//!
//! The paper trains deep CTR models (embedding layer → feature interaction
//! layer → MLP with ReLU + LayerNorm → sigmoid, Eqs. 9–13) with Adam and
//! Xavier initialisation on a GPU stack. This crate rebuilds exactly that
//! computational machinery in pure Rust:
//!
//! - [`param::Parameter`] — a value/gradient pair with optimizer slots;
//! - [`layers`] — [`layers::Dense`], [`layers::Relu`], [`layers::LayerNorm`],
//!   each caching what its backward pass needs;
//! - [`mlp::Mlp`] — the paper's classifier stack `LN(relu(Wx + b))`;
//! - [`embedding::EmbeddingTable`] — sparse-gradient lookup tables for
//!   original features `E^o` and cross-product features `E^m`;
//! - [`optim`] — SGD, Adam (dense + lazy sparse-row updates) and GRDA (the
//!   directional-pruning optimizer AutoFIS uses for its gates);
//! - [`loss`] — fused sigmoid + binary-cross-entropy (paper Eq. 12–13);
//! - [`gradcheck`] — finite-difference gradient checking used by the test
//!   suite to validate every backward pass.
//!
//! All layers implement the [`Layer`] trait, so models compose them freely
//! while owning their own interaction-specific forward/backward logic.

// Kernel-adjacent crate: `unsafe` is permitted only in `embedding` (the
// optinter-lint allowlist) and currently unused; unsafe operations inside
// `unsafe fn`s must be wrapped in explicit `unsafe {}` blocks.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod embedding;
pub mod gradcheck;
pub mod layers;
pub mod loss;
pub mod mlp;
pub mod optim;
pub mod param;
pub mod store;
pub mod workspace;

#[cfg(test)]
mod proptests;

pub use embedding::{EmbedOptimizerMode, EmbeddingTable};
pub use layers::{Dense, LayerNorm, Relu};
pub use loss::{bce_with_logits, bce_with_logits_into, probabilities_into};
pub use mlp::{Mlp, MlpConfig};
pub use optim::{Adam, AdamConfig, DenseOptimizer, Grda, GrdaConfig, Sgd};
pub use param::Parameter;
pub use store::{
    double_hash_slots, qr_slots, splitmix64, EmbedStore, EmbeddingStore, HashScheme,
    HashedEmbedding, StoreKind,
};
pub use workspace::Workspace;

use optinter_tensor::Matrix;

/// A differentiable layer with cached state for one forward/backward cycle.
///
/// Contract: `backward` must be called at most once after each `forward`,
/// with an upstream gradient of the same shape as the forward output; it
/// accumulates parameter gradients and returns the gradient with respect to
/// the forward input.
pub trait Layer {
    /// Computes the layer output for a batch (rows = examples).
    fn forward(&mut self, x: &Matrix) -> Matrix;

    /// Propagates the upstream gradient, accumulating parameter gradients.
    fn backward(&mut self, grad_out: &Matrix) -> Matrix;

    /// Visits every trainable parameter (for optimizer steps / zeroing).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter));

    /// Total number of trainable scalar parameters.
    fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.value.len());
        n
    }

    /// Zeroes all accumulated parameter gradients.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.grad.fill_zero());
    }
}
