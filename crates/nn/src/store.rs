//! Embedding stores: dense tables and compositional (hashed) tables.
//!
//! Production CTR vocabularies run to 10⁷–10⁸ keys; a dense
//! [`EmbeddingTable`] at that scale spends hundreds of megabytes per field
//! group and dominates both memory and optimizer time. This module makes
//! the storage scheme a first-class choice behind the [`EmbeddingStore`]
//! trait:
//!
//! - [`EmbeddingTable`] — one row per key, exact, the default;
//! - [`HashedEmbedding`] — a compositional table in the quotient-remainder
//!   or double-hash style: each key id maps to one row in each of **two**
//!   small sub-tables and its embedding is the element-wise product of the
//!   two rows. Memory drops from `O(V)` rows to `O(√V)` (quotient-remainder
//!   at the optimal bucket) or any chosen budget (double-hash), at the cost
//!   of parameter sharing between colliding keys.
//!
//! Both impls keep the substrate contracts: `*_into` lookup and
//! lane-sharded gradient paths are allocation-free at steady state, and all
//! parallel work is owner-computes over pool rows/lanes, so results are
//! bit-identical at 1, 2 and 4 threads.
//!
//! # Hashing
//!
//! Slot derivation is a pure function of `(seed, id)` built from the same
//! SplitMix64 + Fibonacci multiply-shift idioms as `data::hash` (that crate
//! sits *above* this one, so the two small functions are mirrored here
//! rather than imported). [`qr_slots`] and [`double_hash_slots`] are
//! exported so tests can check purity and collision structure directly.

use crate::embedding::{EmbedOptimizerMode, EmbeddingTable, POOL_MIN_WORK};
use crate::optim::Adam;
use optinter_tensor::pool::Pool;
use optinter_tensor::Matrix;
use rand::Rng;

/// Fibonacci multiplier (2⁶⁴ / φ) — mirrors `data::hash::MULT`.
const MULT: u64 = 0x9E37_79B9_7F4A_7C15;

/// One round of the SplitMix64 mixing function — mirrors
/// `data::hash::splitmix64` (nn cannot depend on the data crate).
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Quotient-remainder slot pair for `id` under divisor `bucket`:
/// `(id / bucket, id % bucket)`. The pair is injective over any key space,
/// so two distinct ids never share *both* rows — the compose output stays
/// unique per key even though each sub-row is shared.
#[inline]
pub fn qr_slots(bucket: u32, id: u32) -> (u32, u32) {
    debug_assert!(bucket > 0, "qr_slots: bucket must be positive");
    (id / bucket, id % bucket)
}

/// Double-hash slot pair for `id`: two independent SplitMix64 draws seeded
/// by `(seed, id)`, each reduced onto `[0, rows)` with the multiply-shift
/// (Lemire) map. Pure function of `(seed, rows, id)` — no process state.
#[inline]
pub fn double_hash_slots(seed: u64, rows: u32, id: u32) -> (u32, u32) {
    debug_assert!(rows > 0, "double_hash_slots: rows must be positive");
    let h1 = splitmix64(seed ^ (id as u64).wrapping_mul(MULT));
    let h2 = splitmix64(h1 ^ 0xA5A5_5A5A_C3C3_3C3C);
    let s1 = (((h1 >> 32) * rows as u64) >> 32) as u32;
    let s2 = (((h2 >> 32) * rows as u64) >> 32) as u32;
    (s1, s2)
}

/// How a [`HashedEmbedding`] derives its two sub-table slots from a key id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashScheme {
    /// `id -> (id / bucket, id % bucket)`; sub-tables have
    /// `ceil(key_space / bucket)` and `bucket` rows. Injective: the slot
    /// pair identifies the id uniquely.
    QuotientRemainder { bucket: u32 },
    /// Two seeded SplitMix64 hashes onto `rows`-row sub-tables. Not
    /// injective, but the memory budget is chosen freely and collisions in
    /// both slots at once are ~`1/rows²`.
    DoubleHash { rows: u32 },
}

/// Uniform interface over embedding storage schemes.
///
/// Lookups take `&mut self` because compositional stores stage sub-table
/// results in owned scratch (the zero-alloc contract forbids temporaries).
/// The gradient/optimizer half mirrors [`EmbeddingTable`]'s touched-row
/// arena protocol: accumulate per batch, apply once per step, and
/// [`catch_up_all`](Self::catch_up_all) to flush lazy tails before
/// exporting weights.
pub trait EmbeddingStore {
    /// Number of distinct key ids the store accepts (`0..key_space`).
    fn key_space(&self) -> usize;
    /// Embedding width per key.
    fn dim(&self) -> usize;
    /// Trainable parameter count (what the store actually allocates).
    fn num_params(&self) -> usize;
    /// Multi-field batched lookup into a caller-owned buffer.
    fn lookup_fields_into(&mut self, flat: &[u32], num_fields: usize, out: &mut Matrix);
    /// [`lookup_fields_into`](Self::lookup_fields_into) with batch rows
    /// sharded across `pool`; bit-identical to the serial path.
    fn lookup_fields_pooled_into(
        &mut self,
        flat: &[u32],
        num_fields: usize,
        pool: &Pool,
        out: &mut Matrix,
    );
    /// Accumulates gradients for the most recent batch shape (inverse of
    /// the lookup), lane-sharded deterministically across `pool`.
    fn accumulate_grad_fields_pooled(
        &mut self,
        flat: &[u32],
        num_fields: usize,
        grad: &Matrix,
        pool: &Pool,
    );
    /// Applies one Adam step under the configured optimizer mode.
    fn apply_adam(&mut self, adam: &Adam, weight_decay: f32);
    /// Applies one SGD step under the configured optimizer mode.
    fn apply_sgd(&mut self, lr: f32, weight_decay: f32);
    /// Replays deferred lazy-Adam zero-grad steps on every row.
    fn catch_up_all(&mut self, adam: &Adam, weight_decay: f32);
    /// Drops accumulated gradients without applying them.
    fn clear_grads(&mut self);
    /// Selects sparse / dense-apply / lazy optimizer behavior.
    fn set_optimizer_mode(&mut self, mode: EmbedOptimizerMode);
}

impl EmbeddingStore for EmbeddingTable {
    fn key_space(&self) -> usize {
        self.vocab()
    }

    fn dim(&self) -> usize {
        EmbeddingTable::dim(self)
    }

    fn num_params(&self) -> usize {
        EmbeddingTable::num_params(self)
    }

    fn lookup_fields_into(&mut self, flat: &[u32], num_fields: usize, out: &mut Matrix) {
        EmbeddingTable::lookup_fields_into(self, flat, num_fields, out);
    }

    fn lookup_fields_pooled_into(
        &mut self,
        flat: &[u32],
        num_fields: usize,
        pool: &Pool,
        out: &mut Matrix,
    ) {
        EmbeddingTable::lookup_fields_pooled_into(self, flat, num_fields, pool, out);
    }

    fn accumulate_grad_fields_pooled(
        &mut self,
        flat: &[u32],
        num_fields: usize,
        grad: &Matrix,
        pool: &Pool,
    ) {
        EmbeddingTable::accumulate_grad_fields_pooled(self, flat, num_fields, grad, pool);
    }

    fn apply_adam(&mut self, adam: &Adam, weight_decay: f32) {
        EmbeddingTable::apply_adam(self, adam, weight_decay);
    }

    fn apply_sgd(&mut self, lr: f32, weight_decay: f32) {
        EmbeddingTable::apply_sgd(self, lr, weight_decay);
    }

    fn catch_up_all(&mut self, adam: &Adam, weight_decay: f32) {
        EmbeddingTable::catch_up_all(self, adam, weight_decay);
    }

    fn clear_grads(&mut self) {
        EmbeddingTable::clear_grads(self);
    }

    fn set_optimizer_mode(&mut self, mode: EmbedOptimizerMode) {
        EmbeddingTable::set_optimizer_mode(self, mode);
    }
}

/// Compositional embedding table: `embed(id) = t1[slot1(id)] ⊙ t2[slot2(id)]`.
///
/// Covers a `key_space`-id vocabulary with two sub-tables whose combined
/// row count is far below `key_space` (see [`HashScheme`]). The Zipf-hot
/// head of a CTR vocabulary keeps effectively-private rows (collisions are
/// rare among few hot keys), while the long tail shares capacity.
///
/// Backward recomputes the sub-lookups, so a step is self-contained:
/// `∂L/∂t1[s1] += grad ⊙ t2[s2]` and symmetrically for `t2`, both through
/// the sub-tables' lane-sharded arena path (deterministic for any thread
/// count). Call the usual `apply_*`/`clear_grads` once per step.
pub struct HashedEmbedding {
    key_space: usize,
    dim: usize,
    seed: u64,
    scheme: HashScheme,
    t1: EmbeddingTable,
    t2: EmbeddingTable,
    /// Per-batch slot scratch (lazily grown, then reused).
    idx1: Vec<u32>,
    idx2: Vec<u32>,
    /// Per-batch sub-lookup / sub-gradient scratch.
    rows1: Matrix,
    rows2: Matrix,
    g1: Matrix,
    g2: Matrix,
}

impl HashedEmbedding {
    /// Creates a hashed store covering ids `0..key_space` at width `dim`.
    ///
    /// Sub-tables are Xavier-initialised from `rng`; `seed` parameterises
    /// the slot hash (only [`HashScheme::DoubleHash`] consumes it, but it
    /// is stored for both so a frozen artifact can reconstruct the exact
    /// mapping).
    pub fn new(
        rng: &mut impl Rng,
        key_space: usize,
        dim: usize,
        scheme: HashScheme,
        seed: u64,
    ) -> Self {
        let (rows1, rows2) = Self::sub_rows(key_space, scheme);
        Self {
            key_space,
            dim,
            seed,
            scheme,
            t1: EmbeddingTable::new(rng, rows1, dim),
            t2: EmbeddingTable::new(rng, rows2, dim),
            idx1: Vec::new(),
            idx2: Vec::new(),
            rows1: Matrix::zeros(0, 0),
            rows2: Matrix::zeros(0, 0),
            g1: Matrix::zeros(0, 0),
            g2: Matrix::zeros(0, 0),
        }
    }

    /// Row counts of the two sub-tables implied by `(key_space, scheme)`.
    pub fn sub_rows(key_space: usize, scheme: HashScheme) -> (usize, usize) {
        assert!(key_space > 0, "HashedEmbedding: empty key space");
        assert!(
            key_space - 1 <= u32::MAX as usize,
            "HashedEmbedding: ids must fit in u32"
        );
        match scheme {
            HashScheme::QuotientRemainder { bucket } => {
                assert!(bucket > 0, "HashedEmbedding: bucket must be positive");
                (key_space.div_ceil(bucket as usize), bucket as usize)
            }
            HashScheme::DoubleHash { rows } => {
                assert!(rows > 0, "HashedEmbedding: rows must be positive");
                (rows as usize, rows as usize)
            }
        }
    }

    /// Number of distinct ids this store accepts.
    pub fn key_space(&self) -> usize {
        self.key_space
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Slot-hash seed (see [`double_hash_slots`]).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured slot-derivation scheme.
    pub fn scheme(&self) -> HashScheme {
        self.scheme
    }

    /// Trainable parameter count across both sub-tables.
    pub fn num_params(&self) -> usize {
        self.t1.num_params() + self.t2.num_params()
    }

    /// First (quotient / first-hash) sub-table.
    pub fn table1(&self) -> &EmbeddingTable {
        &self.t1
    }

    /// Second (remainder / second-hash) sub-table.
    pub fn table2(&self) -> &EmbeddingTable {
        &self.t2
    }

    /// Mutable sub-table access (weight import when thawing artifacts).
    pub fn tables_mut(&mut self) -> (&mut EmbeddingTable, &mut EmbeddingTable) {
        (&mut self.t1, &mut self.t2)
    }

    /// Slot pair for one id under the configured scheme — pure in
    /// `(seed, scheme, id)`.
    #[inline]
    pub fn slots(&self, id: u32) -> (u32, u32) {
        match self.scheme {
            HashScheme::QuotientRemainder { bucket } => qr_slots(bucket, id),
            HashScheme::DoubleHash { rows } => double_hash_slots(self.seed, rows, id),
        }
    }

    /// Selects sparse / dense-apply / lazy optimizer behavior on both
    /// sub-tables. Set before the first `apply_*` call.
    pub fn set_optimizer_mode(&mut self, mode: EmbedOptimizerMode) {
        self.t1.set_optimizer_mode(mode);
        self.t2.set_optimizer_mode(mode);
    }

    /// Fills the slot scratch for a flat id batch.
    fn hash_into(&mut self, flat: &[u32]) {
        self.idx1.resize(flat.len(), 0);
        self.idx2.resize(flat.len(), 0);
        for (k, &id) in flat.iter().enumerate() {
            debug_assert!(
                (id as usize) < self.key_space,
                "HashedEmbedding: id {id} outside key space {}",
                self.key_space
            );
            let (s1, s2) = match self.scheme {
                HashScheme::QuotientRemainder { bucket } => qr_slots(bucket, id),
                HashScheme::DoubleHash { rows } => double_hash_slots(self.seed, rows, id),
            };
            self.idx1[k] = s1;
            self.idx2[k] = s2;
        }
    }

    /// Element-wise product compose of the staged sub-lookups into `out`.
    /// Row-owned writes only, so pooled and serial results are bitwise
    /// equal.
    fn compose_into(&self, batch: usize, width: usize, pool: &Pool, out: &mut Matrix) {
        out.reset(batch, width);
        let (r1, r2) = (&self.rows1, &self.rows2);
        if pool.is_serial() || batch * width < POOL_MIN_WORK {
            for b in 0..batch {
                let dst = out.row_mut(b);
                for ((d, &x), &y) in dst.iter_mut().zip(r1.row(b)).zip(r2.row(b)) {
                    *d = x * y;
                }
            }
        } else {
            pool.for_rows(out.as_mut_slice(), width, |b, dst| {
                for ((d, &x), &y) in dst.iter_mut().zip(r1.row(b)).zip(r2.row(b)) {
                    *d = x * y;
                }
            });
        }
    }

    /// Multi-field batched lookup into a caller-owned buffer (`out` becomes
    /// `[batch, num_fields*dim]`). Allocation-free at steady state.
    pub fn lookup_fields_into(&mut self, flat: &[u32], num_fields: usize, out: &mut Matrix) {
        self.lookup_fields_pooled_into(flat, num_fields, &Pool::serial(), out);
    }

    /// [`lookup_fields_into`](Self::lookup_fields_into) with the sub-table
    /// lookups and the compose pass sharded across `pool`.
    pub fn lookup_fields_pooled_into(
        &mut self,
        flat: &[u32],
        num_fields: usize,
        pool: &Pool,
        out: &mut Matrix,
    ) {
        assert!(num_fields > 0, "lookup_fields: need at least one field");
        assert_eq!(flat.len() % num_fields, 0, "lookup_fields: ragged batch");
        let batch = flat.len() / num_fields;
        let width = num_fields * self.dim;
        self.hash_into(flat);
        self.t1
            .lookup_fields_pooled_into(&self.idx1, num_fields, pool, &mut self.rows1);
        self.t2
            .lookup_fields_pooled_into(&self.idx2, num_fields, pool, &mut self.rows2);
        self.compose_into(batch, width, pool, out);
    }

    /// Accumulates gradients for a composed lookup (inverse of
    /// [`lookup_fields_pooled_into`](Self::lookup_fields_pooled_into)).
    ///
    /// Recomputes the sub-lookups (weights are unchanged between a step's
    /// forward and backward), forms `g1 = grad ⊙ t2-rows` and
    /// `g2 = grad ⊙ t1-rows` with row-owned pooled writes, then feeds each
    /// through the sub-table's lane-sharded arena accumulation.
    pub fn accumulate_grad_fields_pooled(
        &mut self,
        flat: &[u32],
        num_fields: usize,
        grad: &Matrix,
        pool: &Pool,
    ) {
        assert!(
            num_fields > 0,
            "accumulate_grad_fields: need at least one field"
        );
        assert_eq!(
            flat.len() % num_fields,
            0,
            "accumulate_grad_fields: ragged batch"
        );
        let batch = flat.len() / num_fields;
        let width = num_fields * self.dim;
        assert_eq!(grad.rows(), batch, "accumulate_grad_fields: batch mismatch");
        assert_eq!(grad.cols(), width, "accumulate_grad_fields: dim mismatch");
        self.hash_into(flat);
        self.t1
            .lookup_fields_pooled_into(&self.idx1, num_fields, pool, &mut self.rows1);
        self.t2
            .lookup_fields_pooled_into(&self.idx2, num_fields, pool, &mut self.rows2);
        self.g1.reset(batch, width);
        self.g2.reset(batch, width);
        {
            let (r1, r2) = (&self.rows1, &self.rows2);
            let serial = pool.is_serial() || batch * width < POOL_MIN_WORK;
            let fill = |b: usize, dst: &mut [f32], other: &Matrix| {
                for ((d, &g), &o) in dst.iter_mut().zip(grad.row(b)).zip(other.row(b)) {
                    *d = g * o;
                }
            };
            if serial {
                for b in 0..batch {
                    fill(b, self.g1.row_mut(b), r2);
                }
                for b in 0..batch {
                    fill(b, self.g2.row_mut(b), r1);
                }
            } else {
                pool.for_rows(self.g1.as_mut_slice(), width, |b, dst| fill(b, dst, r2));
                pool.for_rows(self.g2.as_mut_slice(), width, |b, dst| fill(b, dst, r1));
            }
        }
        self.t1
            .accumulate_grad_fields_pooled(&self.idx1, num_fields, &self.g1, pool);
        self.t2
            .accumulate_grad_fields_pooled(&self.idx2, num_fields, &self.g2, pool);
    }

    /// Serial convenience form of
    /// [`accumulate_grad_fields_pooled`](Self::accumulate_grad_fields_pooled).
    pub fn accumulate_grad_fields(&mut self, flat: &[u32], num_fields: usize, grad: &Matrix) {
        self.accumulate_grad_fields_pooled(flat, num_fields, grad, &Pool::serial());
    }

    /// Applies one Adam step to both sub-tables (shared timestep).
    pub fn apply_adam(&mut self, adam: &Adam, weight_decay: f32) {
        self.t1.apply_adam(adam, weight_decay);
        self.t2.apply_adam(adam, weight_decay);
    }

    /// Applies one SGD step to both sub-tables.
    pub fn apply_sgd(&mut self, lr: f32, weight_decay: f32) {
        self.t1.apply_sgd(lr, weight_decay);
        self.t2.apply_sgd(lr, weight_decay);
    }

    /// Replays deferred lazy-Adam steps on every sub-table row.
    pub fn catch_up_all(&mut self, adam: &Adam, weight_decay: f32) {
        self.t1.catch_up_all(adam, weight_decay);
        self.t2.catch_up_all(adam, weight_decay);
    }

    /// Drops accumulated gradients without applying them.
    pub fn clear_grads(&mut self) {
        self.t1.clear_grads();
        self.t2.clear_grads();
    }
}

impl EmbeddingStore for HashedEmbedding {
    fn key_space(&self) -> usize {
        HashedEmbedding::key_space(self)
    }

    fn dim(&self) -> usize {
        HashedEmbedding::dim(self)
    }

    fn num_params(&self) -> usize {
        HashedEmbedding::num_params(self)
    }

    fn lookup_fields_into(&mut self, flat: &[u32], num_fields: usize, out: &mut Matrix) {
        HashedEmbedding::lookup_fields_into(self, flat, num_fields, out);
    }

    fn lookup_fields_pooled_into(
        &mut self,
        flat: &[u32],
        num_fields: usize,
        pool: &Pool,
        out: &mut Matrix,
    ) {
        HashedEmbedding::lookup_fields_pooled_into(self, flat, num_fields, pool, out);
    }

    fn accumulate_grad_fields_pooled(
        &mut self,
        flat: &[u32],
        num_fields: usize,
        grad: &Matrix,
        pool: &Pool,
    ) {
        HashedEmbedding::accumulate_grad_fields_pooled(self, flat, num_fields, grad, pool);
    }

    fn apply_adam(&mut self, adam: &Adam, weight_decay: f32) {
        HashedEmbedding::apply_adam(self, adam, weight_decay);
    }

    fn apply_sgd(&mut self, lr: f32, weight_decay: f32) {
        HashedEmbedding::apply_sgd(self, lr, weight_decay);
    }

    fn catch_up_all(&mut self, adam: &Adam, weight_decay: f32) {
        HashedEmbedding::catch_up_all(self, adam, weight_decay);
    }

    fn clear_grads(&mut self) {
        HashedEmbedding::clear_grads(self);
    }

    fn set_optimizer_mode(&mut self, mode: EmbedOptimizerMode) {
        HashedEmbedding::set_optimizer_mode(self, mode);
    }
}

/// Storage-scheme choice carried by model configs. [`StoreKind::Dense`]
/// reproduces the historical dense-table behavior bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreKind {
    /// One exact row per key ([`EmbeddingTable`]).
    #[default]
    Dense,
    /// Quotient-remainder compositional store with the given divisor.
    HashedQr { bucket: u32 },
    /// Double-hash compositional store with the given sub-table rows.
    HashedDouble { rows: u32 },
}

impl StoreKind {
    /// The [`HashScheme`] this kind implies, or `None` for dense.
    pub fn scheme(&self) -> Option<HashScheme> {
        match *self {
            StoreKind::Dense => None,
            StoreKind::HashedQr { bucket } => Some(HashScheme::QuotientRemainder { bucket }),
            StoreKind::HashedDouble { rows } => Some(HashScheme::DoubleHash { rows }),
        }
    }
}

/// A concrete store owned by a model: dense or hashed, chosen per
/// [`StoreKind`]. Inherent methods delegate so model code needs no trait
/// import and no generics.
pub enum EmbedStore {
    /// Dense per-key table.
    Dense(EmbeddingTable),
    /// Compositional two-table store.
    Hashed(HashedEmbedding),
}

impl EmbedStore {
    /// Builds a store of the requested kind. For [`StoreKind::Dense`] this
    /// draws exactly the values `EmbeddingTable::new` always drew, keeping
    /// historical weight trajectories bitwise intact.
    pub fn new(
        kind: StoreKind,
        rng: &mut impl Rng,
        key_space: usize,
        dim: usize,
        hash_seed: u64,
    ) -> Self {
        match kind.scheme() {
            None => EmbedStore::Dense(EmbeddingTable::new(rng, key_space, dim)),
            Some(scheme) => {
                EmbedStore::Hashed(HashedEmbedding::new(rng, key_space, dim, scheme, hash_seed))
            }
        }
    }

    /// The [`StoreKind`] this store was built as.
    pub fn kind(&self) -> StoreKind {
        match self {
            EmbedStore::Dense(_) => StoreKind::Dense,
            EmbedStore::Hashed(h) => match h.scheme() {
                HashScheme::QuotientRemainder { bucket } => StoreKind::HashedQr { bucket },
                HashScheme::DoubleHash { rows } => StoreKind::HashedDouble { rows },
            },
        }
    }

    /// Number of distinct ids the store accepts.
    pub fn key_space(&self) -> usize {
        match self {
            EmbedStore::Dense(t) => t.vocab(),
            EmbedStore::Hashed(h) => h.key_space(),
        }
    }

    /// The compositional hash seed, when the store is hashed (serving
    /// artifacts record it so lookup recomposition hashes identically).
    pub fn hash_seed(&self) -> Option<u64> {
        match self {
            EmbedStore::Dense(_) => None,
            EmbedStore::Hashed(h) => Some(h.seed()),
        }
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        match self {
            EmbedStore::Dense(t) => t.dim(),
            EmbedStore::Hashed(h) => h.dim(),
        }
    }

    /// Trainable parameter count (bytes/row comparisons divide this by
    /// [`key_space`](Self::key_space)).
    pub fn num_params(&self) -> usize {
        match self {
            EmbedStore::Dense(t) => t.num_params(),
            EmbedStore::Hashed(h) => h.num_params(),
        }
    }

    /// The dense table, if this store is dense.
    pub fn as_dense(&self) -> Option<&EmbeddingTable> {
        match self {
            EmbedStore::Dense(t) => Some(t),
            EmbedStore::Hashed(_) => None,
        }
    }

    /// Mutable form of [`as_dense`](Self::as_dense).
    pub fn as_dense_mut(&mut self) -> Option<&mut EmbeddingTable> {
        match self {
            EmbedStore::Dense(t) => Some(t),
            EmbedStore::Hashed(_) => None,
        }
    }

    /// The hashed store, if this store is compositional.
    pub fn as_hashed(&self) -> Option<&HashedEmbedding> {
        match self {
            EmbedStore::Dense(_) => None,
            EmbedStore::Hashed(h) => Some(h),
        }
    }

    /// Mutable form of [`as_hashed`](Self::as_hashed).
    pub fn as_hashed_mut(&mut self) -> Option<&mut HashedEmbedding> {
        match self {
            EmbedStore::Dense(_) => None,
            EmbedStore::Hashed(h) => Some(h),
        }
    }

    /// Multi-field batched lookup into a caller-owned buffer.
    pub fn lookup_fields_into(&mut self, flat: &[u32], num_fields: usize, out: &mut Matrix) {
        match self {
            EmbedStore::Dense(t) => t.lookup_fields_into(flat, num_fields, out),
            EmbedStore::Hashed(h) => h.lookup_fields_into(flat, num_fields, out),
        }
    }

    /// Pooled multi-field lookup; bit-identical to the serial path.
    pub fn lookup_fields_pooled_into(
        &mut self,
        flat: &[u32],
        num_fields: usize,
        pool: &Pool,
        out: &mut Matrix,
    ) {
        match self {
            EmbedStore::Dense(t) => t.lookup_fields_pooled_into(flat, num_fields, pool, out),
            EmbedStore::Hashed(h) => h.lookup_fields_pooled_into(flat, num_fields, pool, out),
        }
    }

    /// Lane-sharded gradient accumulation (inverse of the lookup).
    pub fn accumulate_grad_fields_pooled(
        &mut self,
        flat: &[u32],
        num_fields: usize,
        grad: &Matrix,
        pool: &Pool,
    ) {
        match self {
            EmbedStore::Dense(t) => t.accumulate_grad_fields_pooled(flat, num_fields, grad, pool),
            EmbedStore::Hashed(h) => h.accumulate_grad_fields_pooled(flat, num_fields, grad, pool),
        }
    }

    /// Applies one Adam step under the configured optimizer mode.
    pub fn apply_adam(&mut self, adam: &Adam, weight_decay: f32) {
        match self {
            EmbedStore::Dense(t) => t.apply_adam(adam, weight_decay),
            EmbedStore::Hashed(h) => h.apply_adam(adam, weight_decay),
        }
    }

    /// Applies one SGD step under the configured optimizer mode.
    pub fn apply_sgd(&mut self, lr: f32, weight_decay: f32) {
        match self {
            EmbedStore::Dense(t) => t.apply_sgd(lr, weight_decay),
            EmbedStore::Hashed(h) => h.apply_sgd(lr, weight_decay),
        }
    }

    /// Replays deferred lazy-Adam steps so exported weights match the
    /// dense-apply trajectory.
    pub fn catch_up_all(&mut self, adam: &Adam, weight_decay: f32) {
        match self {
            EmbedStore::Dense(t) => t.catch_up_all(adam, weight_decay),
            EmbedStore::Hashed(h) => h.catch_up_all(adam, weight_decay),
        }
    }

    /// Drops accumulated gradients without applying them.
    pub fn clear_grads(&mut self) {
        match self {
            EmbedStore::Dense(t) => t.clear_grads(),
            EmbedStore::Hashed(h) => h.clear_grads(),
        }
    }

    /// Selects sparse / dense-apply / lazy optimizer behavior.
    pub fn set_optimizer_mode(&mut self, mode: EmbedOptimizerMode) {
        match self {
            EmbedStore::Dense(t) => t.set_optimizer_mode(mode),
            EmbedStore::Hashed(h) => h.set_optimizer_mode(mode),
        }
    }

    /// Exports trainable tensors under `name` (dense: `name`; hashed:
    /// `name.t1` / `name.t2`), appending `(tensor_name, weights)` pairs.
    pub fn push_weights(&self, name: &str, out: &mut Vec<(String, Matrix)>) {
        match self {
            EmbedStore::Dense(t) => out.push((name.to_string(), t.weight().clone())),
            EmbedStore::Hashed(h) => {
                out.push((format!("{name}.t1"), h.table1().weight().clone()));
                out.push((format!("{name}.t2"), h.table2().weight().clone()));
            }
        }
    }

    /// Imports trainable tensors exported by
    /// [`push_weights`](Self::push_weights). `fetch` maps a
    /// tensor name plus its expected `(rows, cols)` to the stored matrix.
    pub fn import_weights(
        &mut self,
        name: &str,
        fetch: &mut dyn FnMut(&str, (usize, usize)) -> Result<Matrix, String>,
    ) -> Result<(), String> {
        match self {
            EmbedStore::Dense(t) => {
                let shape = t.weight().shape();
                *t.weight_mut() = fetch(name, shape)?;
                Ok(())
            }
            EmbedStore::Hashed(h) => {
                let (t1, t2) = h.tables_mut();
                let shape1 = t1.weight().shape();
                *t1.weight_mut() = fetch(&format!("{name}.t1"), shape1)?;
                let shape2 = t2.weight().shape();
                *t2.weight_mut() = fetch(&format!("{name}.t2"), shape2)?;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn zipfish_batch(n: usize, key_space: u32, salt: u64) -> Vec<u32> {
        // Deterministic skewed ids: half the draws land in the hot head.
        (0..n)
            .map(|i| {
                let h = splitmix64(salt ^ i as u64);
                if h % 2 == 0 {
                    (h % 17) as u32
                } else {
                    (h % key_space as u64) as u32
                }
            })
            .collect()
    }

    #[test]
    fn qr_partition_reconstructs_every_id() {
        let (key_space, bucket) = (1000u32, 37u32);
        for id in 0..key_space {
            let (q, r) = qr_slots(bucket, id);
            assert_eq!(q * bucket + r, id);
            assert!(q < key_space.div_ceil(bucket));
            assert!(r < bucket);
        }
    }

    #[test]
    fn double_hash_is_pure_and_in_range() {
        for id in 0..500u32 {
            let a = double_hash_slots(99, 64, id);
            let b = double_hash_slots(99, 64, id);
            assert_eq!(a, b);
            assert!(a.0 < 64 && a.1 < 64);
        }
        // Different seeds move slots for at least some ids.
        assert!((0..500u32).any(|id| double_hash_slots(1, 64, id) != double_hash_slots(2, 64, id)));
    }

    #[test]
    fn hashed_lookup_matches_manual_compose() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut h = HashedEmbedding::new(
            &mut rng,
            200,
            4,
            HashScheme::QuotientRemainder { bucket: 16 },
            3,
        );
        let flat = [5u32, 21, 199, 0, 16, 17];
        let mut out = Matrix::zeros(0, 0);
        h.lookup_fields_into(&flat, 3, &mut out);
        assert_eq!((out.rows(), out.cols()), (2, 12));
        for (k, &id) in flat.iter().enumerate() {
            let (s1, s2) = h.slots(id);
            let (b, f) = (k / 3, k % 3);
            for d in 0..4 {
                let want = h.table1().weight().row(s1 as usize)[d]
                    * h.table2().weight().row(s2 as usize)[d];
                assert_eq!(out.row(b)[f * 4 + d].to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn pooled_hashed_paths_match_serial_bitwise() {
        for scheme in [
            HashScheme::QuotientRemainder { bucket: 16 },
            HashScheme::DoubleHash { rows: 48 },
        ] {
            let mut rng = StdRng::seed_from_u64(11);
            let mut serial = HashedEmbedding::new(&mut rng, 300, 8, scheme, 5);
            let mut rng2 = StdRng::seed_from_u64(11);
            let mut pooled = HashedEmbedding::new(&mut rng2, 300, 8, scheme, 5);
            let flat = zipfish_batch(256 * 8, 300, 42);
            let grad = Matrix::from_fn(256, 64, |r, c| 0.01 * (r as f32 - 3.0) + 0.001 * c as f32);
            let pool = Pool::new(4);

            let mut out_s = Matrix::zeros(0, 0);
            let mut out_p = Matrix::zeros(0, 0);
            serial.lookup_fields_into(&flat, 8, &mut out_s);
            pooled.lookup_fields_pooled_into(&flat, 8, &pool, &mut out_p);
            for (a, b) in out_s.as_slice().iter().zip(out_p.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }

            serial.accumulate_grad_fields(&flat, 8, &grad);
            pooled.accumulate_grad_fields_pooled(&flat, 8, &grad, &pool);
            let adam = Adam::with_lr_eps(0.01, 1e-8);
            serial.apply_adam(&adam, 0.0);
            pooled.apply_adam(&adam, 0.0);
            for (a, b) in serial
                .table1()
                .weight()
                .as_slice()
                .iter()
                .zip(pooled.table1().weight().as_slice())
            {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in serial
                .table2()
                .weight()
                .as_slice()
                .iter()
                .zip(pooled.table2().weight().as_slice())
            {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn hashed_gradients_match_finite_difference() {
        // d(loss)/d(t1[s1]) for loss = sum(out * c) is c ⊙ t2[s2] summed
        // over occurrences — check through the public API on a tiny case.
        let mut rng = StdRng::seed_from_u64(3);
        let mut h = HashedEmbedding::new(
            &mut rng,
            20,
            2,
            HashScheme::QuotientRemainder { bucket: 4 },
            1,
        );
        let flat = [7u32, 7, 13];
        // grad rows: batch=3, one field, dim=2.
        let grad = Matrix::from_fn(3, 2, |r, c| (r as f32 + 1.0) * 0.1 + c as f32 * 0.01);
        h.accumulate_grad_fields(&flat, 1, &grad);
        // Expected t1-slot gradient for id 7 (appears twice: rows 0 and 1).
        let (s1, s2) = h.slots(7);
        let t2row: Vec<f32> = h.table2().weight().row(s2 as usize).to_vec();
        let w_before: Vec<f32> = h.table1().weight().row(s1 as usize).to_vec();
        let lr = 0.5f32;
        h.apply_sgd(lr, 0.0);
        for d in 0..2 {
            let expect_g = grad.row(0)[d] * t2row[d] + grad.row(1)[d] * t2row[d];
            let want = w_before[d] - lr * expect_g;
            let got = h.table1().weight().row(s1 as usize)[d];
            assert!(
                (got - want).abs() < 1e-6,
                "slot grad mismatch: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn store_kind_roundtrips_through_embed_store() {
        let mut rng = StdRng::seed_from_u64(1);
        for kind in [
            StoreKind::Dense,
            StoreKind::HashedQr { bucket: 8 },
            StoreKind::HashedDouble { rows: 24 },
        ] {
            let s = EmbedStore::new(kind, &mut rng, 100, 4, 9);
            assert_eq!(s.kind(), kind);
            assert_eq!(s.key_space(), 100);
            assert_eq!(s.dim(), 4);
        }
    }

    #[test]
    fn dense_embed_store_draws_match_plain_table() {
        let mut rng_a = StdRng::seed_from_u64(77);
        let mut rng_b = StdRng::seed_from_u64(77);
        let plain = EmbeddingTable::new(&mut rng_a, 50, 6);
        let store = EmbedStore::new(StoreKind::Dense, &mut rng_b, 50, 6, 123);
        let dense = store.as_dense().unwrap();
        for (a, b) in plain
            .weight()
            .as_slice()
            .iter()
            .zip(dense.weight().as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn export_import_roundtrip_hashed() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = EmbedStore::new(StoreKind::HashedQr { bucket: 8 }, &mut rng, 64, 4, 2);
        let mut tensors = Vec::new();
        s.push_weights("e_orig", &mut tensors);
        assert_eq!(tensors.len(), 2);
        assert_eq!(tensors[0].0, "e_orig.t1");
        assert_eq!(tensors[1].0, "e_orig.t2");

        let mut rng2 = StdRng::seed_from_u64(999);
        let mut fresh = EmbedStore::new(StoreKind::HashedQr { bucket: 8 }, &mut rng2, 64, 4, 2);
        fresh
            .import_weights("e_orig", &mut |name, shape| {
                tensors
                    .iter()
                    .find(|(n, m)| n == name && m.shape() == shape)
                    .map(|(_, m)| m.clone())
                    .ok_or_else(|| format!("missing {name}"))
            })
            .unwrap();
        let (h, f) = (s.as_hashed().unwrap(), fresh.as_hashed().unwrap());
        assert_eq!(
            h.table1().weight().as_slice(),
            f.table1().weight().as_slice()
        );
        assert_eq!(
            h.table2().weight().as_slice(),
            f.table2().weight().as_slice()
        );
    }

    #[test]
    fn num_params_reflects_compression() {
        let mut rng = StdRng::seed_from_u64(2);
        let dense = EmbedStore::new(StoreKind::Dense, &mut rng, 10_000, 8, 0);
        let hashed = EmbedStore::new(StoreKind::HashedQr { bucket: 100 }, &mut rng, 10_000, 8, 0);
        // QR at bucket=100 over 10k keys: 100 + 100 rows vs 10_000.
        assert_eq!(dense.num_params(), 10_000 * 8);
        assert_eq!(hashed.num_params(), 200 * 8);
        assert!(dense.num_params() >= 4 * hashed.num_params());
    }
}
