//! Optimizers: SGD, Adam (paper Sec. III-A4) and GRDA (the directional
//! pruning optimizer AutoFIS uses for its gate parameters).
//!
//! Adam keeps its first/second-moment state inside each
//! [`Parameter`]'s optimizer slots, so one `Adam` instance
//! can drive any number of parameters while owning only the shared timestep.
//! Weight decay is the classic L2-in-gradient form (`g += wd * w`), matching
//! the paper's `l2_o` / `l2_c` hyper-parameters.

use crate::param::Parameter;

/// A dense-parameter optimizer. `begin_step` is called once per mini-batch,
/// then `step` once per parameter. `step` consumes (and zeroes) the
/// parameter's accumulated gradient.
pub trait DenseOptimizer {
    /// Advances the shared timestep.
    fn begin_step(&mut self);
    /// Applies one update to `p` with the given L2 weight decay.
    fn step(&mut self, p: &mut Parameter, weight_decay: f32);
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }
}

impl DenseOptimizer for Sgd {
    fn begin_step(&mut self) {}

    fn step(&mut self, p: &mut Parameter, weight_decay: f32) {
        let lr = self.lr;
        if weight_decay > 0.0 {
            let wd = weight_decay;
            for (g, &w) in p
                .grad
                .as_mut_slice()
                .iter_mut()
                .zip(p.value.as_slice().iter())
            {
                *g += wd * w;
            }
        }
        p.value.axpy(-lr, &p.grad);
        p.grad.fill_zero();
    }
}

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Denominator epsilon (the paper tunes this per dataset, Table IV).
    pub eps: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// Adam optimizer with per-parameter moment state and a shared timestep.
/// `Copy` so hot-path callers that need a disjoint borrow can copy the
/// optimizer (config + timestep) instead of heap-cloning it.
#[derive(Debug, Clone, Copy)]
pub struct Adam {
    /// Hyper-parameters.
    pub config: AdamConfig,
    t: u64,
}

impl Adam {
    /// Creates an Adam optimizer from a config.
    pub fn new(config: AdamConfig) -> Self {
        Self { config, t: 0 }
    }

    /// Creates Adam with the default betas and the given lr / eps.
    pub fn with_lr_eps(lr: f32, eps: f32) -> Self {
        Self::new(AdamConfig {
            lr,
            eps,
            ..AdamConfig::default()
        })
    }

    /// Current timestep (number of `begin_step` calls).
    pub fn timestep(&self) -> u64 {
        self.t
    }

    /// Bias-correction factors `(1 - beta1^t, 1 - beta2^t)` at the current
    /// timestep, shared by dense and sparse updates.
    pub fn bias_corrections(&self) -> (f32, f32) {
        self.bias_corrections_at(self.t)
    }

    /// Bias-correction factors at an arbitrary timestep `t`. The lazy
    /// catch-up path replays skipped steps one at a time and needs the
    /// corrections *those* steps would have used — computed here with the
    /// exact float expression of [`bias_corrections`](Self::bias_corrections)
    /// so a replayed step is bitwise identical to the live step it stands for.
    pub fn bias_corrections_at(&self, t: u64) -> (f32, f32) {
        let t = t.max(1) as i32;
        (
            1.0 - self.config.beta1.powi(t),
            1.0 - self.config.beta2.powi(t),
        )
    }

    /// Applies a lazy Adam update to a single row (used by embedding tables:
    /// only rows touched in the batch are updated).
    #[allow(clippy::too_many_arguments)]
    pub fn step_row(
        &self,
        value: &mut [f32],
        grad: &[f32],
        m: &mut [f32],
        v: &mut [f32],
        weight_decay: f32,
        bc1: f32,
        bc2: f32,
    ) {
        let c = self.config;
        for i in 0..value.len() {
            let mut g = grad[i];
            if weight_decay > 0.0 {
                g += weight_decay * value[i];
            }
            m[i] = c.beta1 * m[i] + (1.0 - c.beta1) * g;
            v[i] = c.beta2 * v[i] + (1.0 - c.beta2) * g * g;
            let m_hat = m[i] / bc1;
            let v_hat = v[i] / bc2;
            value[i] -= c.lr * m_hat / (v_hat.sqrt() + c.eps);
        }
    }

    /// One Adam row step with an all-zero gradient — the catch-up step the
    /// lazy embedding optimizer replays for rows skipped while untouched.
    /// Element-for-element it performs the float operations of
    /// [`step_row`](Self::step_row) with `grad[i] == 0.0`, so replaying `k`
    /// zero-grad steps is bitwise identical to `k` live steps on a row whose
    /// batches never touched it.
    pub fn step_row_zero_grad(
        &self,
        value: &mut [f32],
        m: &mut [f32],
        v: &mut [f32],
        weight_decay: f32,
        bc1: f32,
        bc2: f32,
    ) {
        let c = self.config;
        for i in 0..value.len() {
            let mut g = 0.0f32;
            if weight_decay > 0.0 {
                g += weight_decay * value[i];
            }
            m[i] = c.beta1 * m[i] + (1.0 - c.beta1) * g;
            v[i] = c.beta2 * v[i] + (1.0 - c.beta2) * g * g;
            let m_hat = m[i] / bc1;
            let v_hat = v[i] / bc2;
            value[i] -= c.lr * m_hat / (v_hat.sqrt() + c.eps);
        }
    }
}

impl DenseOptimizer for Adam {
    fn begin_step(&mut self) {
        self.t += 1;
    }

    fn step(&mut self, p: &mut Parameter, weight_decay: f32) {
        p.ensure_slots();
        let (bc1, bc2) = self.bias_corrections();
        let c = self.config;
        let (Some(m), Some(v)) = (p.slot_a.as_mut(), p.slot_b.as_mut()) else {
            unreachable!("ensure_slots allocated both moment slots");
        };
        let value = p.value.as_mut_slice();
        let grad = p.grad.as_mut_slice();
        for i in 0..value.len() {
            let mut g = grad[i];
            if weight_decay > 0.0 {
                g += weight_decay * value[i];
            }
            let mi = c.beta1 * m.as_slice()[i] + (1.0 - c.beta1) * g;
            let vi = c.beta2 * v.as_slice()[i] + (1.0 - c.beta2) * g * g;
            m.as_mut_slice()[i] = mi;
            v.as_mut_slice()[i] = vi;
            let m_hat = mi / bc1;
            let v_hat = vi / bc2;
            value[i] -= c.lr * m_hat / (v_hat.sqrt() + c.eps);
        }
        p.grad.fill_zero();
    }
}

/// GRDA (generalized regularized dual averaging) hyper-parameters.
///
/// GRDA performs *directional pruning*: parameters whose accumulated
/// gradient path stays small are driven exactly to zero. AutoFIS uses it on
/// the interaction gates so unimportant interactions are removed. The
/// update follows Chao et al. (NeurIPS 2020):
///
/// `v_{t+1} = v_t - lr * g_t`, then
/// `w_{t+1} = sign(v_{t+1}) * max(|v_{t+1}| - g(t), 0)` with
/// `g(t) = c * lr^{1/2} * (t * lr)^{mu}`.
#[derive(Debug, Clone, Copy)]
pub struct GrdaConfig {
    /// Learning rate.
    pub lr: f32,
    /// Soft-threshold scale `c` (Table IV: `c`).
    pub c: f32,
    /// Soft-threshold growth exponent `mu` (Table IV: `mu`).
    pub mu: f32,
}

impl Default for GrdaConfig {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            c: 5e-4,
            mu: 0.8,
        }
    }
}

/// GRDA optimizer. Keeps the dual accumulator in the parameter's slot A.
#[derive(Debug, Clone, Copy)]
pub struct Grda {
    /// Hyper-parameters.
    pub config: GrdaConfig,
    t: u64,
}

impl Grda {
    /// Creates a GRDA optimizer.
    pub fn new(config: GrdaConfig) -> Self {
        Self { config, t: 0 }
    }

    /// Current soft-threshold `g(t)`.
    pub fn threshold(&self) -> f32 {
        let c = self.config;
        c.c * c.lr.sqrt() * (self.t as f32 * c.lr).powf(c.mu)
    }
}

impl DenseOptimizer for Grda {
    fn begin_step(&mut self) {
        self.t += 1;
    }

    fn step(&mut self, p: &mut Parameter, _weight_decay: f32) {
        // The accumulator starts at the initial parameter value so that the
        // first shrinkage is relative to the initialisation.
        if p.slot_a.is_none() {
            // lint: allow(hot-path-alloc, reason="one-time lazy accumulator init on the first step, not steady-state")
            p.slot_a = Some(p.value.clone());
        }
        let lr = self.config.lr;
        let thr = self.threshold();
        let Some(acc) = p.slot_a.as_mut() else {
            unreachable!("accumulator initialised above");
        };
        for i in 0..p.value.len() {
            let a = acc.as_mut_slice();
            a[i] -= lr * p.grad.as_slice()[i];
            let v = a[i];
            p.value.as_mut_slice()[i] = v.signum() * (v.abs() - thr).max(0.0);
        }
        p.grad.fill_zero();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optinter_tensor::Matrix;

    fn quad_grad(p: &Parameter) -> Matrix {
        // f(w) = 0.5 * ||w - 3||^2, grad = w - 3
        p.value.map(|w| w - 3.0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = Parameter::new(Matrix::filled(1, 4, 0.0));
        let mut opt = Sgd::new(0.3);
        for _ in 0..100 {
            p.grad = quad_grad(&p);
            opt.begin_step();
            opt.step(&mut p, 0.0);
        }
        assert!(p.value.as_slice().iter().all(|&w| (w - 3.0).abs() < 1e-3));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = Parameter::new(Matrix::filled(1, 4, 10.0));
        let mut opt = Adam::with_lr_eps(0.1, 1e-8);
        for _ in 0..600 {
            p.grad = quad_grad(&p);
            opt.begin_step();
            opt.step(&mut p, 0.0);
        }
        assert!(
            p.value.as_slice().iter().all(|&w| (w - 3.0).abs() < 1e-2),
            "{:?}",
            p.value
        );
    }

    #[test]
    fn adam_zeroes_grad_after_step() {
        let mut p = Parameter::new(Matrix::filled(1, 2, 1.0));
        p.grad = Matrix::filled(1, 2, 1.0);
        let mut opt = Adam::with_lr_eps(0.01, 1e-8);
        opt.begin_step();
        opt.step(&mut p, 0.0);
        assert_eq!(p.grad.max_abs(), 0.0);
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // With bias correction, the first Adam step has magnitude ~lr.
        let mut p = Parameter::new(Matrix::filled(1, 1, 0.0));
        p.grad = Matrix::filled(1, 1, 0.5);
        let mut opt = Adam::with_lr_eps(0.1, 1e-8);
        opt.begin_step();
        opt.step(&mut p, 0.0);
        assert!(
            (p.value.get(0, 0) + 0.1).abs() < 1e-4,
            "{}",
            p.value.get(0, 0)
        );
    }

    #[test]
    fn weight_decay_pulls_towards_zero() {
        let mut with_wd = Parameter::new(Matrix::filled(1, 1, 5.0));
        let mut without = Parameter::new(Matrix::filled(1, 1, 5.0));
        let mut opt = Sgd::new(0.1);
        // Zero task gradient: only decay acts.
        opt.step(&mut with_wd, 0.5);
        opt.step(&mut without, 0.0);
        assert!(with_wd.value.get(0, 0) < without.value.get(0, 0));
    }

    #[test]
    fn grda_prunes_small_unimportant_weights() {
        // One coordinate receives consistent gradient pressure, the other
        // receives none; GRDA should keep the first alive and shrink the
        // second to exactly zero.
        let mut p = Parameter::new(Matrix::from_rows(&[&[0.01, 0.01]]));
        let mut opt = Grda::new(GrdaConfig {
            lr: 0.05,
            c: 0.3,
            mu: 0.6,
        });
        for _ in 0..200 {
            // Gradient pushes coordinate 0 strongly negative (grow w), none on 1.
            p.grad = Matrix::from_rows(&[&[-1.0, 0.0]]);
            opt.begin_step();
            opt.step(&mut p, 0.0);
        }
        assert!(
            p.value.get(0, 0) > 0.5,
            "driven weight {}",
            p.value.get(0, 0)
        );
        assert_eq!(p.value.get(0, 1), 0.0, "idle weight must be pruned to zero");
    }

    #[test]
    fn grda_threshold_grows_with_time() {
        let mut opt = Grda::new(GrdaConfig::default());
        opt.begin_step();
        let t1 = opt.threshold();
        for _ in 0..99 {
            opt.begin_step();
        }
        let t100 = opt.threshold();
        assert!(t100 > t1);
    }

    #[test]
    fn step_row_matches_dense_adam() {
        // A single-row "embedding" updated via step_row must match a dense
        // parameter of the same shape updated via step().
        let mut dense = Parameter::new(Matrix::filled(1, 3, 1.0));
        dense.grad = Matrix::from_rows(&[&[0.1, -0.2, 0.3]]);
        let mut opt = Adam::with_lr_eps(0.01, 1e-8);
        opt.begin_step();

        let mut row_value = [1.0f32; 3];
        let grad = [0.1f32, -0.2, 0.3];
        let mut m = [0.0f32; 3];
        let mut v = [0.0f32; 3];
        let (bc1, bc2) = opt.bias_corrections();
        opt.step_row(&mut row_value, &grad, &mut m, &mut v, 0.0, bc1, bc2);
        opt.step(&mut dense, 0.0);
        for (rv, dv) in row_value.iter().zip(dense.value.as_slice()) {
            assert!((rv - dv).abs() < 1e-7);
        }
    }
}
