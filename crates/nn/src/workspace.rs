//! Reusable scratch-buffer pool for allocation-free training steps.
//!
//! Every forward/backward pass needs a handful of temporaries — MLP
//! activations, gradient ping-pong buffers, assembled model inputs. Heap
//! allocating them per batch costs more than the arithmetic for small
//! models, so models own a [`Workspace`] and [`take`](Workspace::take) /
//! [`recycle`](Workspace::recycle) matrices around each step. A recycled
//! matrix keeps its backing `Vec`, so once every slot has grown to the
//! working-set maximum the steady-state training loop performs no heap
//! allocation at all.
//!
//! Ownership rules (see DESIGN.md §8):
//!
//! - A buffer is owned by exactly one holder at a time: either the
//!   workspace free list or the code that took it. There is no sharing and
//!   no interior mutability — `take` moves the `Matrix` out, `recycle`
//!   moves it back.
//! - Buffers that must survive from forward to backward (cached
//!   activations, assembled inputs) are *held*, not recycled, until the
//!   backward pass has consumed them.
//! - `take` returns a zeroed matrix of the exact requested shape, so a
//!   recycled buffer can never leak values between steps or call sites.

use optinter_tensor::Matrix;

/// A pool of reusable [`Matrix`] buffers.
#[derive(Default)]
pub struct Workspace {
    free: Vec<Matrix>,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a zeroed `[rows, cols]` matrix, reusing a recycled buffer's
    /// allocation when one is available.
    ///
    /// Prefers the free buffer whose capacity already fits the request so
    /// mixed-size call patterns converge to zero allocations instead of
    /// repeatedly growing whichever buffer happens to be on top.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let need = rows * cols;
        let slot = self
            .free
            .iter()
            .position(|m| m.len() >= need)
            .unwrap_or(self.free.len().saturating_sub(1));
        let mut m = match self.free.get(slot) {
            Some(_) => self.free.swap_remove(slot),
            None => Matrix::zeros(0, 0),
        };
        m.reset(rows, cols);
        m
    }

    /// Returns a buffer to the pool for reuse by a later [`take`](Self::take).
    pub fn recycle(&mut self, m: Matrix) {
        self.free.push(m);
    }

    /// Number of buffers currently sitting in the free list.
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_exact_shape() {
        let mut ws = Workspace::new();
        let mut a = ws.take(3, 4);
        assert_eq!(a.shape(), (3, 4));
        a.fill_with(7.0);
        ws.recycle(a);
        let b = ws.take(2, 5);
        assert_eq!(b.shape(), (2, 5));
        assert!(
            b.as_slice().iter().all(|&v| v == 0.0),
            "recycled buffer leaked"
        );
    }

    #[test]
    fn recycled_capacity_is_reused() {
        let mut ws = Workspace::new();
        let a = ws.take(16, 16);
        let ptr = a.as_slice().as_ptr();
        ws.recycle(a);
        // Same size request must come back on the same allocation.
        let b = ws.take(16, 16);
        assert_eq!(b.as_slice().as_ptr(), ptr);
        assert_eq!(ws.free_buffers(), 0);
    }

    #[test]
    fn take_prefers_fitting_buffer() {
        let mut ws = Workspace::new();
        let small = ws.take(2, 2);
        let big = ws.take(32, 32);
        let big_ptr = big.as_slice().as_ptr();
        ws.recycle(small);
        ws.recycle(big);
        // A large request should land on the large buffer even though the
        // small one was recycled first.
        let c = ws.take(32, 32);
        assert_eq!(c.as_slice().as_ptr(), big_ptr);
    }
}
