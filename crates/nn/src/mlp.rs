//! The paper's classifier: a stack of `LN(relu(W a + b))` hidden layers
//! followed by a linear output to a single logit (Eqs. 9–12).

use crate::layers::{Dense, LayerNorm, Relu};
use crate::param::Parameter;
use crate::workspace::Workspace;
use crate::Layer;
use optinter_tensor::Matrix;
use rand::Rng;

/// Configuration for an [`Mlp`].
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Input feature dimension.
    pub input_dim: usize,
    /// Hidden layer widths, e.g. `[128, 128, 64]` (paper's `net`).
    pub hidden: Vec<usize>,
    /// Output dimension (1 for a CTR logit).
    pub output_dim: usize,
    /// Whether to apply layer normalisation after each ReLU (paper: `LN=true`).
    pub layer_norm: bool,
    /// LayerNorm epsilon.
    pub ln_eps: f32,
}

impl MlpConfig {
    /// The paper's default classifier shape for a given input size.
    pub fn classifier(input_dim: usize, hidden: Vec<usize>) -> Self {
        Self {
            input_dim,
            hidden,
            output_dim: 1,
            layer_norm: true,
            ln_eps: 1e-5,
        }
    }
}

struct HiddenBlock {
    dense: Dense,
    relu: Relu,
    norm: Option<LayerNorm>,
}

/// Multi-layer perceptron with ReLU activations and optional LayerNorm.
///
/// The allocation-free entry points are [`forward_into`](Self::forward_into)
/// and [`backward_into`](Self::backward_into): the MLP owns its activation
/// chain in [`Workspace`]-recycled buffers and the caller owns the input, so
/// a steady-state forward/backward cycle touches the heap zero times. The
/// [`Layer`] trait impl delegates to the same code (cloning the input so the
/// trait's self-contained `backward` contract still holds).
pub struct Mlp {
    blocks: Vec<HiddenBlock>,
    output: Dense,
    input_dim: usize,
    ws: Workspace,
    /// Output of each hidden block from the last `forward_into`, held until
    /// `backward_into` consumes them as the dense layers' inputs.
    acts: Vec<Matrix>,
    /// Input clone for the [`Layer`] trait path only; `forward_into` never
    /// touches it.
    cached_input: Option<Matrix>,
}

impl Mlp {
    /// Builds an MLP from a config with Xavier-initialised weights.
    pub fn new(rng: &mut impl Rng, config: &MlpConfig) -> Self {
        let mut blocks = Vec::with_capacity(config.hidden.len());
        let mut prev = config.input_dim;
        for &width in &config.hidden {
            blocks.push(HiddenBlock {
                dense: Dense::new(rng, prev, width),
                relu: Relu::new(),
                norm: config
                    .layer_norm
                    .then(|| LayerNorm::new(width, config.ln_eps)),
            });
            prev = width;
        }
        let output = Dense::new(rng, prev, config.output_dim);
        Self {
            blocks,
            output,
            input_dim: config.input_dim,
            ws: Workspace::new(),
            acts: Vec::new(),
            cached_input: None,
        }
    }

    /// Input dimension the MLP expects.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Number of hidden blocks.
    pub fn depth(&self) -> usize {
        self.blocks.len()
    }

    /// Runs every dense layer's matmuls on `pool` from now on. Results stay
    /// bit-identical to serial execution for any thread count (see
    /// [`optinter_tensor::pool`]).
    pub fn set_pool(&mut self, pool: &optinter_tensor::Pool) {
        for block in self.blocks.iter_mut() {
            block.dense.set_pool(pool.clone());
        }
        self.output.set_pool(pool.clone());
    }

    /// Forward pass into `out` (reshaped to `[B, output_dim]`), holding the
    /// activation chain in recycled workspace buffers for the matching
    /// [`backward_into`](Self::backward_into). Allocation-free once the
    /// workspace has warmed up.
    pub fn forward_into(&mut self, x: &Matrix, out: &mut Matrix) {
        // lint: allow(panic-free, reason="input width is pinned at FrozenScorer construction: weights and workspace are sized from the same artifact dims")
        assert_eq!(x.cols(), self.input_dim, "Mlp: input dim mismatch");
        for a in self.acts.drain(..) {
            self.ws.recycle(a);
        }
        for i in 0..self.blocks.len() {
            let mut z = self.ws.take(x.rows(), self.blocks[i].dense.out_dim());
            {
                let input: &Matrix = if i == 0 { x } else { &self.acts[i - 1] };
                self.blocks[i].dense.forward_into(input, &mut z);
            }
            self.blocks[i].relu.forward_inplace(&mut z);
            let z = if let Some(norm) = self.blocks[i].norm.as_mut() {
                let mut y = self.ws.take(z.rows(), z.cols());
                norm.forward_into(&z, &mut y);
                self.ws.recycle(z);
                y
            } else {
                z
            };
            self.acts.push(z);
        }
        let last: &Matrix = if self.blocks.is_empty() {
            x
        } else {
            &self.acts[self.blocks.len() - 1]
        };
        self.output.forward_into(last, out);
    }

    /// Backward pass from `grad_out` into `dx` (reshaped to `[B,
    /// input_dim]`), accumulating parameter gradients. `x` must be the same
    /// input the matching [`forward_into`](Self::forward_into) saw; the
    /// held activation chain is recycled on the way down.
    pub fn backward_into(&mut self, x: &Matrix, grad_out: &Matrix, dx: &mut Matrix) {
        assert_eq!(
            self.acts.len(),
            self.blocks.len(),
            "Mlp::backward_into called before forward_into"
        );
        if self.blocks.is_empty() {
            self.output.backward_into(x, grad_out, dx);
            return;
        }
        let rows = grad_out.rows();
        let nb = self.blocks.len();
        let mut g = self.ws.take(rows, self.output.in_dim());
        self.output
            .backward_into(&self.acts[nb - 1], grad_out, &mut g);
        for i in (0..nb).rev() {
            if let Some(norm) = self.blocks[i].norm.as_mut() {
                let mut t = self.ws.take(rows, g.cols());
                norm.backward_into(&g, &mut t);
                self.ws.recycle(std::mem::replace(&mut g, t));
            }
            self.blocks[i].relu.backward_inplace(&mut g);
            if i == 0 {
                self.blocks[i].dense.backward_into(x, &g, dx);
            } else {
                let mut t = self.ws.take(rows, self.blocks[i].dense.in_dim());
                self.blocks[i]
                    .dense
                    .backward_into(&self.acts[i - 1], &g, &mut t);
                self.ws.recycle(std::mem::replace(&mut g, t));
            }
        }
        self.ws.recycle(g);
        for a in self.acts.drain(..) {
            self.ws.recycle(a);
        }
    }
}

impl Layer for Mlp {
    fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.forward_into(x, &mut out);
        self.cached_input = Some(x.clone());
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = match self.cached_input.take() {
            Some(x) => x,
            None => panic!("Mlp::backward called before forward"),
        };
        let mut dx = Matrix::zeros(0, 0);
        self.backward_into(&x, grad_out, &mut dx);
        self.cached_input = Some(x);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        for block in self.blocks.iter_mut() {
            block.dense.visit_params(f);
            if let Some(norm) = block.norm.as_mut() {
                norm.visit_params(f);
            }
        }
        self.output.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::bce_with_logits;
    use crate::optim::{Adam, DenseOptimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape_is_batch_by_out() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut mlp = Mlp::new(&mut rng, &MlpConfig::classifier(6, vec![8, 4]));
        let x = Matrix::zeros(5, 6);
        let y = mlp.forward(&x);
        assert_eq!(y.shape(), (5, 1));
    }

    #[test]
    fn param_count_matches_architecture() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = MlpConfig::classifier(6, vec![8, 4]);
        let mut mlp = Mlp::new(&mut rng, &cfg);
        // dense: 6*8+8, ln: 8+8, dense: 8*4+4, ln: 4+4, out: 4*1+1
        let expected = (6 * 8 + 8) + 16 + (8 * 4 + 4) + 8 + 5;
        assert_eq!(mlp.num_params(), expected);
    }

    #[test]
    fn learns_xor_like_function() {
        // A small MLP must fit a nonlinear function of two inputs; a linear
        // model cannot, so convergence validates the full backward chain.
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = MlpConfig {
            input_dim: 2,
            hidden: vec![16, 16],
            output_dim: 1,
            layer_norm: true,
            ln_eps: 1e-5,
        };
        let mut mlp = Mlp::new(&mut rng, &cfg);
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let labels = [0.0, 1.0, 1.0, 0.0];
        let mut opt = Adam::with_lr_eps(0.02, 1e-8);
        let mut final_loss = f32::MAX;
        for _ in 0..800 {
            let logits = mlp.forward(&x);
            let (loss, grad) = bce_with_logits(&logits, &labels);
            final_loss = loss;
            mlp.backward(&grad);
            opt.begin_step();
            mlp.visit_params(&mut |p| opt.step(p, 0.0));
        }
        assert!(final_loss < 0.05, "XOR loss did not converge: {final_loss}");
    }

    #[test]
    fn gradcheck_full_mlp_input_gradient() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = MlpConfig {
            input_dim: 3,
            hidden: vec![5],
            output_dim: 1,
            layer_norm: true,
            ln_eps: 1e-3,
        };
        let mut mlp = Mlp::new(&mut rng, &cfg);
        let x = Matrix::from_rows(&[&[0.3, -0.5, 0.9], &[1.1, 0.2, -0.7]]);
        let labels = [1.0, 0.0];
        let logits = mlp.forward(&x);
        let (_, grad) = bce_with_logits(&logits, &labels);
        let dx = mlp.backward(&grad);
        crate::gradcheck::assert_grad_matches(&x, &dx, 5e-3, 3e-2, |xp| {
            let logits = mlp.forward(xp);
            let mut loss = 0.0;
            for (i, &y) in labels.iter().enumerate() {
                loss += optinter_tensor::numerics::stable_bce(logits.get(i, 0), y);
            }
            loss / labels.len() as f32
        });
    }

    #[test]
    fn no_layernorm_variant_works() {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = MlpConfig {
            input_dim: 4,
            hidden: vec![6],
            output_dim: 1,
            layer_norm: false,
            ln_eps: 1e-5,
        };
        let mut mlp = Mlp::new(&mut rng, &cfg);
        let x = Matrix::filled(2, 4, 0.5);
        let y = mlp.forward(&x);
        assert_eq!(y.shape(), (2, 1));
        let g = Matrix::filled(2, 1, 1.0);
        let dx = mlp.backward(&g);
        assert_eq!(dx.shape(), (2, 4));
    }
}
