//! Basic differentiable layers: fully-connected, ReLU, and layer
//! normalisation (paper Eqs. 9–11).

use crate::param::Parameter;
use crate::Layer;
use optinter_tensor::{init, Matrix, Pool};
use rand::Rng;

/// Fully-connected layer `y = x W + b` with `W: [in, out]`, `b: [1, out]`.
///
/// The three matmuls (forward product, weight gradient, input gradient) run
/// through the layer's [`Pool`] via the owner-computes `*_pooled` kernels,
/// so results are bit-identical to serial execution for any thread count.
/// The bias-gradient column sums are a cross-row reduction and stay serial.
pub struct Dense {
    /// Weight matrix, shape `[in_dim, out_dim]`.
    pub w: Parameter,
    /// Bias row vector, shape `[1, out_dim]`.
    pub b: Parameter,
    cached_input: Option<Matrix>,
    pool: Pool,
}

impl Dense {
    /// Creates a Xavier-initialised dense layer (serial pool).
    pub fn new(rng: &mut impl Rng, in_dim: usize, out_dim: usize) -> Self {
        Self {
            w: Parameter::new(init::xavier_uniform(rng, in_dim, out_dim)),
            b: Parameter::zeros(1, out_dim),
            cached_input: None,
            pool: Pool::serial(),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.value.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.value.cols()
    }

    /// Runs this layer's matmuls on `pool` from now on.
    pub fn set_pool(&mut self, pool: Pool) {
        self.pool = pool;
    }

    /// Writes `x W + b` into `y` (reshaped as needed) without touching the
    /// layer's cached state — the allocation-free path [`crate::Mlp`] uses
    /// with workspace buffers.
    pub fn forward_into(&self, x: &Matrix, y: &mut Matrix) {
        // lint: allow(panic-free, reason="input width is pinned at FrozenScorer construction: weights and workspace are sized from the same artifact dims")
        assert_eq!(x.cols(), self.in_dim(), "Dense: input dim mismatch");
        y.reset(x.rows(), self.out_dim());
        x.matmul_accumulate_pooled(&self.w.value, y, 1.0, &self.pool);
        let b = self.b.value.row(0);
        for r in 0..y.rows() {
            for (v, &bi) in y.row_mut(r).iter_mut().zip(b.iter()) {
                *v += bi;
            }
        }
    }

    /// Accumulates `dW`/`db` and writes `dx = g W^T` into `dx` (reshaped as
    /// needed). `x` must be the input the matching forward pass saw; the
    /// caller owns the activation chain, so nothing is cloned here.
    pub fn backward_into(&mut self, x: &Matrix, grad_out: &Matrix, dx: &mut Matrix) {
        assert_eq!(grad_out.rows(), x.rows(), "Dense: grad batch mismatch");
        assert_eq!(grad_out.cols(), self.out_dim(), "Dense: grad dim mismatch");
        assert_eq!(x.cols(), self.in_dim(), "Dense: input dim mismatch");
        // dW += x^T g
        x.matmul_at_b_accumulate_pooled(grad_out, &mut self.w.grad, 1.0, &self.pool);
        // db += column sums of g
        let db = self.b.grad.row_mut(0);
        for r in 0..grad_out.rows() {
            for (d, &g) in db.iter_mut().zip(grad_out.row(r).iter()) {
                *d += g;
            }
        }
        // dx = g W^T
        dx.reset(grad_out.rows(), self.in_dim());
        grad_out.matmul_a_bt_into_pooled(&self.w.value, dx, &self.pool);
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut y = Matrix::zeros(0, 0);
        self.forward_into(x, &mut y);
        self.cached_input = Some(x.clone());
        y
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = match self.cached_input.take() {
            Some(x) => x,
            None => panic!("Dense::backward called before forward"),
        };
        let mut dx = Matrix::zeros(0, 0);
        self.backward_into(&x, grad_out, &mut dx);
        self.cached_input = Some(x);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

/// Rectified linear unit, `relu(z) = max(0, z)` (paper Eq. 10).
#[derive(Default)]
pub struct Relu {
    mask: Vec<bool>,
    shape: (usize, usize),
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rectifies `a` in place, recording the activation mask for
    /// [`backward_inplace`](Self::backward_inplace) — no output buffer.
    pub fn forward_inplace(&mut self, a: &mut Matrix) {
        self.shape = a.shape();
        self.mask.clear();
        self.mask.reserve(a.len());
        for v in a.as_mut_slice().iter_mut() {
            let active = *v > 0.0;
            self.mask.push(active);
            if !active {
                *v = 0.0;
            }
        }
    }

    /// Zeroes the gradient entries of inactive units in place.
    pub fn backward_inplace(&self, g: &mut Matrix) {
        assert_eq!(g.shape(), self.shape, "Relu: grad shape mismatch");
        for (d, &active) in g.as_mut_slice().iter_mut().zip(self.mask.iter()) {
            if !active {
                *d = 0.0;
            }
        }
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut y = x.clone();
        self.forward_inplace(&mut y);
        y
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        // lint: allow(hot-path-alloc, reason="allocating convenience Layer API; the training loop calls backward_inplace")
        let mut dx = grad_out.clone();
        self.backward_inplace(&mut dx);
        dx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Parameter)) {}
}

/// Layer normalisation over the feature dimension (paper Eq. 11):
/// `LN(z) = gamma * (z - E[z]) / sqrt(Var[z] + eps) + beta`, per row.
pub struct LayerNorm {
    /// Scale vector gamma, shape `[1, dim]`, initialised to 1.
    pub gamma: Parameter,
    /// Shift vector beta, shape `[1, dim]`, initialised to 0.
    pub beta: Parameter,
    eps: f32,
    cached_xhat: Option<Matrix>,
    cached_inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Creates a layer-norm over `dim` features with the given epsilon.
    pub fn new(dim: usize, eps: f32) -> Self {
        Self {
            gamma: Parameter::new(Matrix::filled(1, dim, 1.0)),
            beta: Parameter::zeros(1, dim),
            eps,
            cached_xhat: None,
            cached_inv_std: Vec::new(),
        }
    }

    /// Normalised feature dimension.
    pub fn dim(&self) -> usize {
        self.gamma.value.cols()
    }

    /// Writes `LN(x)` into `y` (reshaped as needed). The normalised
    /// activations are cached in a persistent buffer that is reused across
    /// steps, so the steady state allocates nothing.
    pub fn forward_into(&mut self, x: &Matrix, y: &mut Matrix) {
        // lint: allow(panic-free, reason="input width is pinned at FrozenScorer construction: weights and workspace are sized from the same artifact dims")
        assert_eq!(x.cols(), self.dim(), "LayerNorm: dim mismatch");
        let n = x.cols();
        let xhat = self.cached_xhat.get_or_insert_with(|| Matrix::zeros(0, 0));
        xhat.reset(x.rows(), n);
        self.cached_inv_std.clear();
        self.cached_inv_std.reserve(x.rows());
        y.reset(x.rows(), n);
        let gamma = self.gamma.value.row(0);
        let beta = self.beta.value.row(0);
        for r in 0..x.rows() {
            let (mean, var) = optinter_tensor::ops::row_mean_var(x.row(r));
            let inv_std = 1.0 / (var + self.eps).sqrt();
            self.cached_inv_std.push(inv_std);
            let xh_row = xhat.row_mut(r);
            for (c, &v) in x.row(r).iter().enumerate() {
                xh_row[c] = (v - mean) * inv_std;
            }
            let y_row = y.row_mut(r);
            for c in 0..n {
                y_row[c] = gamma[c] * xh_row[c] + beta[c];
            }
        }
    }

    /// Accumulates `dgamma`/`dbeta` and writes the input gradient into `dx`
    /// (reshaped as needed).
    pub fn backward_into(&mut self, grad_out: &Matrix, dx: &mut Matrix) {
        let xhat = match self.cached_xhat.as_ref() {
            Some(xhat) => xhat,
            None => panic!("LayerNorm::backward called before forward"),
        };
        assert_eq!(
            grad_out.shape(),
            xhat.shape(),
            "LayerNorm: grad shape mismatch"
        );
        let n = xhat.cols();
        let n_f = n as f32;
        let gamma = self.gamma.value.row(0);
        let dgamma = self.gamma.grad.row_mut(0);
        let dbeta = self.beta.grad.row_mut(0);
        dx.reset(xhat.rows(), n);
        for r in 0..xhat.rows() {
            let g = grad_out.row(r);
            let xh = xhat.row(r);
            let inv_std = self.cached_inv_std[r];
            // Parameter grads.
            for c in 0..n {
                dgamma[c] += g[c] * xh[c];
                dbeta[c] += g[c];
            }
            // dxhat = g * gamma; dx via the standard LN backward:
            // dx = (inv_std / n) * (n*dxhat - sum(dxhat) - xhat * sum(dxhat*xhat))
            let mut sum_dxhat = 0.0f32;
            let mut sum_dxhat_xhat = 0.0f32;
            for c in 0..n {
                let dxh = g[c] * gamma[c];
                sum_dxhat += dxh;
                sum_dxhat_xhat += dxh * xh[c];
            }
            let dx_row = dx.row_mut(r);
            for c in 0..n {
                let dxh = g[c] * gamma[c];
                dx_row[c] = inv_std / n_f * (n_f * dxh - sum_dxhat - xh[c] * sum_dxhat_xhat);
            }
        }
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut y = Matrix::zeros(0, 0);
        self.forward_into(x, &mut y);
        y
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut dx = Matrix::zeros(0, 0);
        self.backward_into(grad_out, &mut dx);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_forward_known_values() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Dense::new(&mut rng, 2, 2);
        d.w.value = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
        d.b.value = Matrix::from_rows(&[&[0.5, -0.5]]);
        let x = Matrix::from_rows(&[&[3.0, 4.0]]);
        let y = d.forward(&x);
        assert_eq!(y.as_slice(), &[3.5, 7.5]);
    }

    #[test]
    fn dense_param_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Dense::new(&mut rng, 5, 7);
        assert_eq!(d.num_params(), 5 * 7 + 7);
    }

    #[test]
    fn dense_backward_bias_grad_is_column_sum() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = Dense::new(&mut rng, 3, 2);
        let x = Matrix::from_fn(4, 3, |r, c| (r + c) as f32 * 0.1);
        let _ = d.forward(&x);
        let g = Matrix::filled(4, 2, 1.0);
        let _ = d.backward(&g);
        assert_eq!(d.b.grad.as_slice(), &[4.0, 4.0]);
    }

    #[test]
    fn relu_masks_negatives() {
        let mut relu = Relu::new();
        let x = Matrix::from_rows(&[&[-1.0, 2.0], &[0.0, -3.0]]);
        let y = relu.forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 0.0]);
        let g = Matrix::filled(2, 2, 5.0);
        let dx = relu.backward(&g);
        assert_eq!(dx.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn layernorm_output_is_normalised() {
        let mut ln = LayerNorm::new(4, 1e-5);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0], &[10.0, 10.0, 10.0, 10.1]]);
        let y = ln.forward(&x);
        for r in 0..y.rows() {
            let (mean, var) = optinter_tensor::ops::row_mean_var(y.row(r));
            assert!(mean.abs() < 1e-3, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 0.05, "row {r} var {var}");
        }
    }

    #[test]
    fn layernorm_gamma_beta_affect_output() {
        let mut ln = LayerNorm::new(2, 1e-5);
        ln.gamma.value = Matrix::from_rows(&[&[2.0, 2.0]]);
        ln.beta.value = Matrix::from_rows(&[&[1.0, 1.0]]);
        let x = Matrix::from_rows(&[&[0.0, 2.0]]);
        let y = ln.forward(&x);
        // xhat = [-1, 1] -> y = [-1, 3]
        assert!((y.get(0, 0) + 1.0).abs() < 1e-4);
        assert!((y.get(0, 1) - 3.0).abs() < 1e-4);
    }

    #[test]
    fn layer_trait_zero_grads() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut d = Dense::new(&mut rng, 2, 2);
        let x = Matrix::filled(1, 2, 1.0);
        let _ = d.forward(&x);
        let _ = d.backward(&Matrix::filled(1, 2, 1.0));
        assert!(d.w.grad.max_abs() > 0.0);
        d.zero_grads();
        assert_eq!(d.w.grad.max_abs(), 0.0);
        assert_eq!(d.b.grad.max_abs(), 0.0);
    }
}
