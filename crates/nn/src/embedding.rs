//! Embedding tables with sparse gradient accumulation.
//!
//! The embedding layer (paper Sec. II-B2) maps one-hot encoded categorical
//! features to dense vectors: `e_i = E x_i`. Because each mini-batch touches
//! only a tiny fraction of the vocabulary, gradients are accumulated
//! per-touched-row and the Adam update is applied lazily to exactly those
//! rows — the standard "sparse Adam" used by production CTR trainers.
//!
//! # Gradient arena
//!
//! Pending gradients live in a flat arena: a contiguous `[vocab * dim]`
//! slab (allocated lazily, once) plus a vector of touched row ids and a
//! per-row touched flag. Accumulation is a bounds-checked slab add — no
//! hashing, no per-row boxing — and the apply step sorts the touched ids so
//! rows update in ascending order, which keeps the update loop deterministic
//! by construction (each row's Adam step only reads its own slab row, so the
//! order cannot change any float, but a fixed order keeps traces and
//! diagnostics stable too). Touched slab rows are re-zeroed on apply/clear;
//! untouched rows are never written, so the slab stays clean without a
//! `vocab`-sized sweep.

use crate::optim::Adam;
use optinter_tensor::pool::Pool;
use optinter_tensor::{init, Matrix};
use rand::Rng;

/// Work size (scalar copies / adds) below which the pooled embedding paths
/// stay serial; the fallback never changes results.
const POOL_MIN_WORK: usize = 16 * 1024;

/// An embedding table of shape `[vocab, dim]` with sparse gradients.
pub struct EmbeddingTable {
    weight: Matrix,
    /// Lazily allocated Adam first-moment state.
    m: Option<Matrix>,
    /// Lazily allocated Adam second-moment state.
    v: Option<Matrix>,
    /// Flat gradient arena: row `idx` of the slab accumulates the pending
    /// gradient of weight row `idx`. Lazily allocated to `[vocab * dim]` on
    /// first use; rows not in `touched` are all-zero by invariant.
    grad_slab: Vec<f32>,
    /// Ids with pending gradient, each listed exactly once (in first-touch
    /// order until [`apply_adam`](Self::apply_adam) sorts them).
    touched: Vec<u32>,
    /// `touched_flags[idx]` mirrors membership of `idx` in `touched`.
    touched_flags: Vec<bool>,
}

impl EmbeddingTable {
    /// Creates a Xavier-initialised table with `vocab` rows of size `dim`.
    pub fn new(rng: &mut impl Rng, vocab: usize, dim: usize) -> Self {
        Self {
            weight: init::xavier_embedding(rng, vocab, dim),
            m: None,
            v: None,
            grad_slab: Vec::new(),
            touched: Vec::new(),
            touched_flags: Vec::new(),
        }
    }

    /// Creates a zero-initialised table (useful for tests).
    pub fn zeros(vocab: usize, dim: usize) -> Self {
        Self {
            weight: Matrix::zeros(vocab, dim),
            m: None,
            v: None,
            grad_slab: Vec::new(),
            touched: Vec::new(),
            touched_flags: Vec::new(),
        }
    }

    /// Vocabulary size (number of rows).
    pub fn vocab(&self) -> usize {
        self.weight.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.weight.cols()
    }

    /// Number of trainable scalars.
    pub fn num_params(&self) -> usize {
        self.weight.len()
    }

    /// Immutable view of row `idx`.
    pub fn row(&self, idx: u32) -> &[f32] {
        self.weight.row(idx as usize)
    }

    /// Mutable access to the raw weight matrix (tests / analysis only).
    pub fn weight_mut(&mut self) -> &mut Matrix {
        &mut self.weight
    }

    /// Immutable access to the raw weight matrix.
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// Ensures the gradient arena is allocated (one-time cost per table).
    fn ensure_arena(&mut self) {
        if self.grad_slab.is_empty() && !self.weight.is_empty() {
            self.grad_slab.resize(self.weight.len(), 0.0);
        }
        if self.touched_flags.is_empty() {
            self.touched_flags.resize(self.vocab(), false);
        }
    }

    /// Registers `idx` as touched (idempotent).
    #[inline]
    fn touch(&mut self, idx: u32) {
        let i = idx as usize;
        if !self.touched_flags[i] {
            self.touched_flags[i] = true;
            self.touched.push(idx);
        }
    }

    /// Looks up a batch of single indices, producing `[B, dim]`.
    pub fn lookup(&self, indices: &[u32]) -> Matrix {
        let dim = self.dim();
        let mut out = Matrix::zeros(indices.len(), dim);
        for (r, &idx) in indices.iter().enumerate() {
            out.row_mut(r)
                .copy_from_slice(self.weight.row(idx as usize));
        }
        out
    }

    /// Looks up a flattened multi-field batch.
    ///
    /// `flat` is row-major `[B * num_fields]`: example `b`'s field `f` index
    /// lives at `flat[b * num_fields + f]`. Output is `[B, num_fields*dim]`
    /// with field blocks concatenated in order — the paper's Eq. 7 layout.
    pub fn lookup_fields(&self, flat: &[u32], num_fields: usize) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.lookup_fields_into(flat, num_fields, &mut out);
        out
    }

    /// [`lookup_fields`](Self::lookup_fields) into a caller-owned buffer
    /// (reshaped as needed) — the allocation-free form.
    pub fn lookup_fields_into(&self, flat: &[u32], num_fields: usize, out: &mut Matrix) {
        assert!(num_fields > 0, "lookup_fields: need at least one field");
        assert_eq!(flat.len() % num_fields, 0, "lookup_fields: ragged batch");
        let batch = flat.len() / num_fields;
        let dim = self.dim();
        out.reset(batch, num_fields * dim);
        for b in 0..batch {
            let row = out.row_mut(b);
            for f in 0..num_fields {
                let idx = flat[b * num_fields + f] as usize;
                row[f * dim..(f + 1) * dim].copy_from_slice(self.weight.row(idx));
            }
        }
    }

    /// [`lookup_fields`](Self::lookup_fields) with the batch rows sharded
    /// across `pool`. Pure row copies, so trivially bit-identical to the
    /// serial lookup for any thread count.
    pub fn lookup_fields_pooled(&self, flat: &[u32], num_fields: usize, pool: &Pool) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.lookup_fields_pooled_into(flat, num_fields, pool, &mut out);
        out
    }

    /// [`lookup_fields_pooled`](Self::lookup_fields_pooled) into a
    /// caller-owned buffer (reshaped as needed).
    pub fn lookup_fields_pooled_into(
        &self,
        flat: &[u32],
        num_fields: usize,
        pool: &Pool,
        out: &mut Matrix,
    ) {
        assert!(num_fields > 0, "lookup_fields: need at least one field");
        assert_eq!(flat.len() % num_fields, 0, "lookup_fields: ragged batch");
        let dim = self.dim();
        if pool.is_serial() || flat.len() * dim < POOL_MIN_WORK {
            self.lookup_fields_into(flat, num_fields, out);
            return;
        }
        let batch = flat.len() / num_fields;
        let width = num_fields * dim;
        out.reset(batch, width);
        pool.for_rows(out.as_mut_slice(), width, |b, row| {
            for f in 0..num_fields {
                let idx = flat[b * num_fields + f] as usize;
                row[f * dim..(f + 1) * dim].copy_from_slice(self.weight.row(idx));
            }
        });
    }

    /// Mean-pooled lookup for multivalent features (paper Sec. II-B2):
    /// each example has a *set* of values; their embeddings are averaged.
    /// Empty sets produce a zero vector.
    pub fn lookup_mean(&self, value_sets: &[Vec<u32>]) -> Matrix {
        let dim = self.dim();
        let mut out = Matrix::zeros(value_sets.len(), dim);
        for (r, set) in value_sets.iter().enumerate() {
            if set.is_empty() {
                continue;
            }
            let row = out.row_mut(r);
            for &idx in set {
                for (o, &w) in row.iter_mut().zip(self.weight.row(idx as usize).iter()) {
                    *o += w;
                }
            }
            let inv = 1.0 / set.len() as f32;
            for o in row.iter_mut() {
                *o *= inv;
            }
        }
        out
    }

    /// Accumulates gradients for a single-index lookup (inverse of
    /// [`lookup`](Self::lookup)). `grad` has shape `[B, dim]`.
    pub fn accumulate_grad(&mut self, indices: &[u32], grad: &Matrix) {
        assert_eq!(
            grad.rows(),
            indices.len(),
            "accumulate_grad: batch mismatch"
        );
        assert_eq!(grad.cols(), self.dim(), "accumulate_grad: dim mismatch");
        self.ensure_arena();
        let dim = self.dim();
        for (r, &idx) in indices.iter().enumerate() {
            self.touch(idx);
            let i = idx as usize;
            let acc = &mut self.grad_slab[i * dim..(i + 1) * dim];
            for (a, &g) in acc.iter_mut().zip(grad.row(r).iter()) {
                *a += g;
            }
        }
    }

    /// Accumulates gradients for a multi-field lookup (inverse of
    /// [`lookup_fields`](Self::lookup_fields)). `grad` has shape
    /// `[B, num_fields*dim]`.
    ///
    /// Contributions add into each row's arena slot in `(b, f)` scan order —
    /// the same association the lane-sharded
    /// [`accumulate_grad_fields_pooled`](Self::accumulate_grad_fields_pooled)
    /// path uses, so the two are bit-identical for any thread count.
    pub fn accumulate_grad_fields(&mut self, flat: &[u32], num_fields: usize, grad: &Matrix) {
        self.accumulate_grad_fields_pooled(flat, num_fields, grad, &Pool::serial());
    }

    /// Lane-sharded parallel version of
    /// [`accumulate_grad_fields`](Self::accumulate_grad_fields).
    ///
    /// Each lane owns the arena rows with `idx % lanes == lane` and scans
    /// the whole batch in `(b, f)` order, so a given row's pending sum is
    /// built in exactly the serial accumulation order no matter how many
    /// lanes run. Lanes touch disjoint rows (enforced by
    /// [`Pool::for_lane_rows`]), so no cross-thread floating-point
    /// reduction happens at all.
    pub fn accumulate_grad_fields_pooled(
        &mut self,
        flat: &[u32],
        num_fields: usize,
        grad: &Matrix,
        pool: &Pool,
    ) {
        let dim = self.dim();
        assert_eq!(
            flat.len() % num_fields,
            0,
            "accumulate_grad_fields: ragged batch"
        );
        let batch = flat.len() / num_fields;
        assert_eq!(grad.rows(), batch, "accumulate_grad_fields: batch mismatch");
        assert_eq!(
            grad.cols(),
            num_fields * dim,
            "accumulate_grad_fields: dim mismatch"
        );
        self.ensure_arena();
        // Touched-id registration is a cheap serial scan; the FP work below
        // is what shards.
        for &idx in flat {
            self.touch(idx);
        }
        let lanes = if pool.is_serial() || flat.len() * dim < POOL_MIN_WORK {
            1
        } else {
            pool.threads()
        };
        if lanes == 1 {
            for b in 0..batch {
                let grow = grad.row(b);
                for f in 0..num_fields {
                    let i = flat[b * num_fields + f] as usize;
                    let acc = &mut self.grad_slab[i * dim..(i + 1) * dim];
                    for (a, &g) in acc.iter_mut().zip(grow[f * dim..(f + 1) * dim].iter()) {
                        *a += g;
                    }
                }
            }
        } else {
            pool.for_lane_rows(&mut self.grad_slab, dim, lanes, |_, mut lane| {
                for b in 0..batch {
                    let grow = grad.row(b);
                    for f in 0..num_fields {
                        let idx = flat[b * num_fields + f] as usize;
                        if !lane.owns(idx) {
                            continue;
                        }
                        let acc = lane.row_mut(idx);
                        for (a, &g) in acc.iter_mut().zip(grow[f * dim..(f + 1) * dim].iter()) {
                            *a += g;
                        }
                    }
                }
            });
        }
    }

    /// Accumulates gradients for a mean-pooled lookup (inverse of
    /// [`lookup_mean`](Self::lookup_mean)).
    pub fn accumulate_grad_mean(&mut self, value_sets: &[Vec<u32>], grad: &Matrix) {
        assert_eq!(
            grad.rows(),
            value_sets.len(),
            "accumulate_grad_mean: batch mismatch"
        );
        assert_eq!(
            grad.cols(),
            self.dim(),
            "accumulate_grad_mean: dim mismatch"
        );
        self.ensure_arena();
        let dim = self.dim();
        for (r, set) in value_sets.iter().enumerate() {
            if set.is_empty() {
                continue;
            }
            let inv = 1.0 / set.len() as f32;
            for &idx in set {
                self.touch(idx);
                let i = idx as usize;
                let acc = &mut self.grad_slab[i * dim..(i + 1) * dim];
                for (a, &g) in acc.iter_mut().zip(grad.row(r).iter()) {
                    *a += g * inv;
                }
            }
        }
    }

    /// Number of rows with pending gradient accumulation.
    pub fn touched_rows(&self) -> usize {
        self.touched.len()
    }

    /// Applies a lazy Adam update to every touched row in ascending-id
    /// order, then clears the accumulated gradients. Weight decay is applied
    /// to touched rows only (the sparse-L2 convention).
    pub fn apply_adam(&mut self, adam: &Adam, weight_decay: f32) {
        if self.touched.is_empty() {
            return;
        }
        let (rows, cols) = self.weight.shape();
        if self.m.is_none() {
            self.m = Some(Matrix::zeros(rows, cols));
            self.v = Some(Matrix::zeros(rows, cols));
        }
        let (bc1, bc2) = adam.bias_corrections();
        let dim = self.dim();
        let mut touched = std::mem::take(&mut self.touched);
        touched.sort_unstable();
        if let (Some(m), Some(v)) = (self.m.as_mut(), self.v.as_mut()) {
            for &idx in &touched {
                let i = idx as usize;
                let grad = &mut self.grad_slab[i * dim..(i + 1) * dim];
                adam.step_row(
                    self.weight.row_mut(i),
                    grad,
                    m.row_mut(i),
                    v.row_mut(i),
                    weight_decay,
                    bc1,
                    bc2,
                );
                grad.fill(0.0);
                self.touched_flags[i] = false;
            }
        }
        touched.clear();
        self.touched = touched;
    }

    /// Applies plain SGD to touched rows (tests / ablations) in ascending-id
    /// order, then clears.
    pub fn apply_sgd(&mut self, lr: f32, weight_decay: f32) {
        let dim = self.dim();
        let mut touched = std::mem::take(&mut self.touched);
        touched.sort_unstable();
        for &idx in &touched {
            let i = idx as usize;
            let grad = &mut self.grad_slab[i * dim..(i + 1) * dim];
            let row = self.weight.row_mut(i);
            for (w, &g) in row.iter_mut().zip(grad.iter()) {
                *w -= lr * (g + weight_decay * *w);
            }
            grad.fill(0.0);
            self.touched_flags[i] = false;
        }
        touched.clear();
        self.touched = touched;
    }

    /// Discards pending gradients without applying them.
    pub fn clear_grads(&mut self) {
        let dim = self.dim();
        for &idx in &self.touched {
            let i = idx as usize;
            self.grad_slab[i * dim..(i + 1) * dim].fill(0.0);
            self.touched_flags[i] = false;
        }
        self.touched.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, DenseOptimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_table() -> EmbeddingTable {
        let mut t = EmbeddingTable::zeros(4, 2);
        for r in 0..4 {
            for c in 0..2 {
                t.weight_mut().set(r, c, (r * 2 + c) as f32);
            }
        }
        t
    }

    #[test]
    fn lookup_copies_rows() {
        let t = small_table();
        let out = t.lookup(&[2, 0, 2]);
        assert_eq!(out.row(0), &[4.0, 5.0]);
        assert_eq!(out.row(1), &[0.0, 1.0]);
        assert_eq!(out.row(2), &[4.0, 5.0]);
    }

    #[test]
    fn lookup_fields_layout() {
        let t = small_table();
        // 2 examples x 2 fields
        let flat = [0u32, 1, 2, 3];
        let out = t.lookup_fields(&flat, 2);
        assert_eq!(out.shape(), (2, 4));
        assert_eq!(out.row(0), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn lookup_fields_into_reuses_buffer() {
        let t = small_table();
        let mut out = Matrix::zeros(7, 3);
        t.lookup_fields_into(&[0u32, 1, 2, 3], 2, &mut out);
        assert_eq!(out.shape(), (2, 4));
        assert_eq!(out.row(0), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn lookup_mean_pools() {
        let t = small_table();
        let sets = vec![vec![0, 2], vec![], vec![3]];
        let out = t.lookup_mean(&sets);
        assert_eq!(out.row(0), &[2.0, 3.0]); // mean of [0,1] and [4,5]
        assert_eq!(out.row(1), &[0.0, 0.0]);
        assert_eq!(out.row(2), &[6.0, 7.0]);
    }

    #[test]
    fn grad_accumulation_sums_repeated_indices() {
        let mut t = small_table();
        let grad = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        t.accumulate_grad(&[1, 1], &grad);
        assert_eq!(t.touched_rows(), 1);
        t.apply_sgd(1.0, 0.0);
        // Row 1 started [2,3]; grad sum [3,3] -> [−1, 0]
        assert_eq!(t.row(1), &[-1.0, 0.0]);
        assert_eq!(t.touched_rows(), 0);
    }

    #[test]
    fn fields_grad_roundtrip() {
        let mut t = small_table();
        let flat = [0u32, 1];
        let grad = Matrix::from_rows(&[&[0.5, 0.5, 1.5, 1.5]]);
        t.accumulate_grad_fields(&flat, 2, &grad);
        t.apply_sgd(1.0, 0.0);
        assert_eq!(t.row(0), &[-0.5, 0.5]);
        assert_eq!(t.row(1), &[0.5, 1.5]);
    }

    #[test]
    fn mean_grad_splits_evenly() {
        let mut t = small_table();
        let sets = vec![vec![0, 1]];
        let grad = Matrix::from_rows(&[&[2.0, 2.0]]);
        t.accumulate_grad_mean(&sets, &grad);
        t.apply_sgd(1.0, 0.0);
        // Each of rows 0 and 1 receives grad 1.0.
        assert_eq!(t.row(0), &[-1.0, 0.0]);
        assert_eq!(t.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn arena_rows_are_rezeroed_after_apply() {
        // A second step touching the same row must start from a clean slab
        // row, not the previous step's gradient.
        let mut t = small_table();
        t.accumulate_grad(&[2], &Matrix::from_rows(&[&[1.0, 0.0]]));
        t.apply_sgd(1.0, 0.0);
        assert_eq!(t.row(2), &[3.0, 5.0]);
        t.accumulate_grad(&[2], &Matrix::from_rows(&[&[0.0, 2.0]]));
        t.apply_sgd(1.0, 0.0);
        assert_eq!(t.row(2), &[3.0, 3.0]);
    }

    #[test]
    fn clear_grads_rezeroes_touched_arena_rows() {
        let mut t = small_table();
        t.accumulate_grad(&[0], &Matrix::filled(1, 2, 1.0));
        t.clear_grads();
        assert_eq!(t.touched_rows(), 0);
        let before = t.row(0).to_vec();
        // A fresh accumulate must not see the discarded gradient.
        t.accumulate_grad(&[0], &Matrix::filled(1, 2, 0.0));
        t.apply_sgd(1.0, 0.0);
        assert_eq!(t.row(0), before.as_slice());
    }

    #[test]
    fn untouched_rows_not_updated_by_adam() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut t = EmbeddingTable::new(&mut rng, 10, 4);
        let before_row9 = t.row(9).to_vec();
        let mut adam = Adam::with_lr_eps(0.01, 1e-8);
        let grad = Matrix::filled(1, 4, 1.0);
        t.accumulate_grad(&[3], &grad);
        adam.begin_step();
        t.apply_adam(&adam, 0.0);
        assert_eq!(t.row(9), before_row9.as_slice());
        // Touched row moved.
        assert!(t.row(3).iter().zip(before_row9.iter()).any(|(a, b)| a != b));
    }

    #[test]
    fn sparse_adam_matches_dense_adam_for_always_touched_row() {
        // A row touched every step must follow exactly the dense Adam
        // trajectory of an equivalent parameter.
        let mut table = EmbeddingTable::zeros(1, 3);
        table.weight_mut().fill_with(1.0);
        let mut dense = crate::param::Parameter::new(Matrix::filled(1, 3, 1.0));
        let mut adam = Adam::with_lr_eps(0.05, 1e-8);
        for step in 0..20 {
            let g = 0.1 * (step as f32 + 1.0);
            let grad = Matrix::filled(1, 3, g);
            table.accumulate_grad(&[0], &grad);
            dense.grad = grad.clone();
            adam.begin_step();
            table.apply_adam(&adam, 0.0);
            adam.step(&mut dense, 0.0);
        }
        for (a, b) in table.row(0).iter().zip(dense.value.as_slice().iter()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn pooled_lookup_and_sharded_grads_match_serial_bitwise() {
        // Large enough to clear POOL_MIN_WORK so the parallel paths run.
        let (batch, fields, dim, vocab) = (256, 8, 8, 37);
        let mut rng = StdRng::seed_from_u64(12);
        let mut serial_t = EmbeddingTable::new(&mut rng, vocab, dim);
        let mut pooled_t = EmbeddingTable::zeros(vocab, dim);
        pooled_t
            .weight_mut()
            .as_mut_slice()
            .copy_from_slice(serial_t.weight().as_slice());
        let flat: Vec<u32> = (0..batch * fields)
            .map(|i| ((i * 7 + i / 11) % vocab) as u32)
            .collect();
        let grad = Matrix::from_fn(batch, fields * dim, |r, c| {
            ((r * 31 + c) as f32 * 0.01).sin()
        });
        let pool = optinter_tensor::Pool::new(4);
        let lookup_serial = serial_t.lookup_fields(&flat, fields);
        let lookup_pooled = pooled_t.lookup_fields_pooled(&flat, fields, &pool);
        assert_eq!(lookup_serial.as_slice(), lookup_pooled.as_slice());
        serial_t.accumulate_grad_fields(&flat, fields, &grad);
        pooled_t.accumulate_grad_fields_pooled(&flat, fields, &grad, &pool);
        serial_t.apply_sgd(1.0, 0.0);
        pooled_t.apply_sgd(1.0, 0.0);
        for (a, b) in serial_t
            .weight()
            .as_slice()
            .iter()
            .zip(pooled_t.weight().as_slice())
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "sharded grads diverged: {a} vs {b}"
            );
        }
    }

    #[test]
    fn clear_grads_discards_pending() {
        let mut t = small_table();
        t.accumulate_grad(&[0], &Matrix::filled(1, 2, 1.0));
        t.clear_grads();
        let before = t.row(0).to_vec();
        t.apply_sgd(1.0, 0.0);
        assert_eq!(t.row(0), before.as_slice());
    }
}
