//! Embedding tables with sparse gradient accumulation.
//!
//! The embedding layer (paper Sec. II-B2) maps one-hot encoded categorical
//! features to dense vectors: `e_i = E x_i`. Because each mini-batch touches
//! only a tiny fraction of the vocabulary, gradients are accumulated
//! per-touched-row and the Adam update is applied lazily to exactly those
//! rows — the standard "sparse Adam" used by production CTR trainers.
//!
//! # Gradient arena
//!
//! Pending gradients live in a flat arena: a contiguous `[vocab * dim]`
//! slab (allocated lazily, once) plus a vector of touched row ids and a
//! per-row touched flag. Accumulation is a bounds-checked slab add — no
//! hashing, no per-row boxing — and the apply step sorts the touched ids so
//! rows update in ascending order, which keeps the update loop deterministic
//! by construction (each row's Adam step only reads its own slab row, so the
//! order cannot change any float, but a fixed order keeps traces and
//! diagnostics stable too). Touched slab rows are re-zeroed on apply/clear;
//! untouched rows are never written, so the slab stays clean without a
//! `vocab`-sized sweep.
//!
//! # Optimizer modes
//!
//! [`EmbedOptimizerMode`] selects what `apply_adam` visits per step:
//!
//! - `Sparse` (default): touched rows only, with weight decay applied to
//!   touched rows only — the sparse-L2 convention every existing trajectory
//!   in this repo was trained under.
//! - `DenseApply`: a full `0..vocab` sweep per step — textbook dense Adam,
//!   where momentum carry-over and weight decay move *every* row every step.
//!   O(vocab·dim) per step; the reference the lazy path is tested against.
//! - `LazyCatchUp`: dense-Adam *semantics* at touched-rows *cost*. Each row
//!   remembers the last step it was brought up to date (`last_step`); when a
//!   batch touches it again, the skipped steps are replayed as zero-gradient
//!   Adam steps (each with that step's own bias corrections) before the live
//!   gradient applies. [`catch_up_all`](EmbeddingTable::catch_up_all) replays
//!   the tail for every row, after which the weights are bitwise identical
//!   to a `DenseApply` run of the same touch/gradient sequence — see the
//!   `lazy_catch_up_matches_dense_apply_bitwise` test and DESIGN.md §14.

use crate::optim::Adam;
use optinter_tensor::pool::Pool;
use optinter_tensor::{init, Matrix};
use rand::Rng;

/// Which rows the embedding optimizer visits per `apply_adam` step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmbedOptimizerMode {
    /// Touched rows only; weight decay hits touched rows only (sparse-L2).
    #[default]
    Sparse,
    /// Full `0..vocab` sweep per step — dense Adam semantics, O(vocab·dim)
    /// per step. The equivalence reference for `LazyCatchUp`.
    DenseApply,
    /// Dense Adam semantics at sparse cost: skipped steps are replayed as
    /// zero-gradient catch-up steps on first re-touch (and by
    /// [`catch_up_all`](EmbeddingTable::catch_up_all) at the end). Applies
    /// to `apply_adam`; `apply_sgd` falls back to `Sparse` behaviour (a
    /// zero-grad SGD step without weight decay is a no-op anyway).
    LazyCatchUp,
}

/// Work size (scalar copies / adds) below which the pooled embedding paths
/// stay serial; the fallback never changes results.
pub(crate) const POOL_MIN_WORK: usize = 16 * 1024;

/// An embedding table of shape `[vocab, dim]` with sparse gradients.
pub struct EmbeddingTable {
    weight: Matrix,
    /// Lazily allocated Adam first-moment state.
    m: Option<Matrix>,
    /// Lazily allocated Adam second-moment state.
    v: Option<Matrix>,
    /// Flat gradient arena: row `idx` of the slab accumulates the pending
    /// gradient of weight row `idx`. Lazily allocated to `[vocab * dim]` on
    /// first use; rows not in `touched` are all-zero by invariant.
    grad_slab: Vec<f32>,
    /// Ids with pending gradient, each listed exactly once (in first-touch
    /// order until [`apply_adam`](Self::apply_adam) sorts them).
    touched: Vec<u32>,
    /// `touched_flags[idx]` mirrors membership of `idx` in `touched`.
    touched_flags: Vec<bool>,
    /// Optimizer row-visiting policy (see [`EmbedOptimizerMode`]).
    opt_mode: EmbedOptimizerMode,
    /// `LazyCatchUp` bookkeeping: the Adam timestep each row was last
    /// brought up to date at. Lazily allocated to `[vocab]` on first apply.
    last_step: Vec<u32>,
}

impl EmbeddingTable {
    /// Creates a Xavier-initialised table with `vocab` rows of size `dim`.
    pub fn new(rng: &mut impl Rng, vocab: usize, dim: usize) -> Self {
        Self {
            weight: init::xavier_embedding(rng, vocab, dim),
            m: None,
            v: None,
            grad_slab: Vec::new(),
            touched: Vec::new(),
            touched_flags: Vec::new(),
            opt_mode: EmbedOptimizerMode::Sparse,
            last_step: Vec::new(),
        }
    }

    /// Creates a zero-initialised table (useful for tests).
    pub fn zeros(vocab: usize, dim: usize) -> Self {
        Self {
            weight: Matrix::zeros(vocab, dim),
            m: None,
            v: None,
            grad_slab: Vec::new(),
            touched: Vec::new(),
            touched_flags: Vec::new(),
            opt_mode: EmbedOptimizerMode::Sparse,
            last_step: Vec::new(),
        }
    }

    /// Selects the optimizer row-visiting policy. Call before the first
    /// `apply_adam`: switching modes mid-training is unsupported (the
    /// `LazyCatchUp` bookkeeping only tracks steps taken while active).
    pub fn set_optimizer_mode(&mut self, mode: EmbedOptimizerMode) {
        self.opt_mode = mode;
    }

    /// The active optimizer row-visiting policy.
    pub fn optimizer_mode(&self) -> EmbedOptimizerMode {
        self.opt_mode
    }

    /// Vocabulary size (number of rows).
    pub fn vocab(&self) -> usize {
        self.weight.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.weight.cols()
    }

    /// Number of trainable scalars.
    pub fn num_params(&self) -> usize {
        self.weight.len()
    }

    /// Immutable view of row `idx`.
    pub fn row(&self, idx: u32) -> &[f32] {
        self.weight.row(idx as usize)
    }

    /// Mutable access to the raw weight matrix (tests / analysis only).
    pub fn weight_mut(&mut self) -> &mut Matrix {
        &mut self.weight
    }

    /// Immutable access to the raw weight matrix.
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// Ensures the gradient arena is allocated (one-time cost per table).
    fn ensure_arena(&mut self) {
        if self.grad_slab.is_empty() && !self.weight.is_empty() {
            self.grad_slab.resize(self.weight.len(), 0.0);
        }
        if self.touched_flags.is_empty() {
            self.touched_flags.resize(self.vocab(), false);
        }
    }

    /// Registers `idx` as touched (idempotent).
    #[inline]
    fn touch(&mut self, idx: u32) {
        let i = idx as usize;
        if !self.touched_flags[i] {
            self.touched_flags[i] = true;
            self.touched.push(idx);
        }
    }

    /// Looks up a batch of single indices, producing `[B, dim]`.
    pub fn lookup(&self, indices: &[u32]) -> Matrix {
        let dim = self.dim();
        let mut out = Matrix::zeros(indices.len(), dim);
        for (r, &idx) in indices.iter().enumerate() {
            out.row_mut(r)
                .copy_from_slice(self.weight.row(idx as usize));
        }
        out
    }

    /// Looks up a flattened multi-field batch.
    ///
    /// `flat` is row-major `[B * num_fields]`: example `b`'s field `f` index
    /// lives at `flat[b * num_fields + f]`. Output is `[B, num_fields*dim]`
    /// with field blocks concatenated in order — the paper's Eq. 7 layout.
    pub fn lookup_fields(&self, flat: &[u32], num_fields: usize) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.lookup_fields_into(flat, num_fields, &mut out);
        out
    }

    /// [`lookup_fields`](Self::lookup_fields) into a caller-owned buffer
    /// (reshaped as needed) — the allocation-free form.
    pub fn lookup_fields_into(&self, flat: &[u32], num_fields: usize, out: &mut Matrix) {
        assert!(num_fields > 0, "lookup_fields: need at least one field");
        assert_eq!(flat.len() % num_fields, 0, "lookup_fields: ragged batch");
        let batch = flat.len() / num_fields;
        let dim = self.dim();
        out.reset(batch, num_fields * dim);
        for b in 0..batch {
            let row = out.row_mut(b);
            for f in 0..num_fields {
                let idx = flat[b * num_fields + f] as usize;
                row[f * dim..(f + 1) * dim].copy_from_slice(self.weight.row(idx));
            }
        }
    }

    /// [`lookup_fields`](Self::lookup_fields) with the batch rows sharded
    /// across `pool`. Pure row copies, so trivially bit-identical to the
    /// serial lookup for any thread count.
    pub fn lookup_fields_pooled(&self, flat: &[u32], num_fields: usize, pool: &Pool) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.lookup_fields_pooled_into(flat, num_fields, pool, &mut out);
        out
    }

    /// [`lookup_fields_pooled`](Self::lookup_fields_pooled) into a
    /// caller-owned buffer (reshaped as needed).
    pub fn lookup_fields_pooled_into(
        &self,
        flat: &[u32],
        num_fields: usize,
        pool: &Pool,
        out: &mut Matrix,
    ) {
        assert!(num_fields > 0, "lookup_fields: need at least one field");
        assert_eq!(flat.len() % num_fields, 0, "lookup_fields: ragged batch");
        let dim = self.dim();
        if pool.is_serial() || flat.len() * dim < POOL_MIN_WORK {
            self.lookup_fields_into(flat, num_fields, out);
            return;
        }
        let batch = flat.len() / num_fields;
        let width = num_fields * dim;
        out.reset(batch, width);
        pool.for_rows(out.as_mut_slice(), width, |b, row| {
            for f in 0..num_fields {
                let idx = flat[b * num_fields + f] as usize;
                row[f * dim..(f + 1) * dim].copy_from_slice(self.weight.row(idx));
            }
        });
    }

    /// Mean-pooled lookup for multivalent features (paper Sec. II-B2) in
    /// flat CSR form: example `r`'s value set is
    /// `values[offsets[r]..offsets[r + 1]]`, so a whole ragged batch is two
    /// borrowed slices — no per-example `Vec`. Each set's embeddings are
    /// averaged into `out` row `r` (reshaped to `[offsets.len()-1, dim]`);
    /// empty sets produce a zero vector. Allocation-free at steady state.
    pub fn lookup_mean_into(&self, values: &[u32], offsets: &[usize], out: &mut Matrix) {
        assert!(
            !offsets.is_empty(),
            "lookup_mean: offsets needs a final end"
        );
        assert_eq!(
            *offsets.last().unwrap_or(&0),
            values.len(),
            "lookup_mean: offsets do not cover values"
        );
        let dim = self.dim();
        let batch = offsets.len() - 1;
        out.reset(batch, dim);
        for r in 0..batch {
            let (start, end) = (offsets[r], offsets[r + 1]);
            assert!(start <= end, "lookup_mean: offsets must be monotone");
            if start == end {
                continue;
            }
            let row = out.row_mut(r);
            for &idx in &values[start..end] {
                for (o, &w) in row.iter_mut().zip(self.weight.row(idx as usize).iter()) {
                    *o += w;
                }
            }
            let inv = 1.0 / (end - start) as f32;
            for o in row.iter_mut() {
                *o *= inv;
            }
        }
    }

    /// Accumulates gradients for a single-index lookup (inverse of
    /// [`lookup`](Self::lookup)). `grad` has shape `[B, dim]`.
    pub fn accumulate_grad(&mut self, indices: &[u32], grad: &Matrix) {
        assert_eq!(
            grad.rows(),
            indices.len(),
            "accumulate_grad: batch mismatch"
        );
        assert_eq!(grad.cols(), self.dim(), "accumulate_grad: dim mismatch");
        self.ensure_arena();
        let dim = self.dim();
        for (r, &idx) in indices.iter().enumerate() {
            self.touch(idx);
            let i = idx as usize;
            let acc = &mut self.grad_slab[i * dim..(i + 1) * dim];
            for (a, &g) in acc.iter_mut().zip(grad.row(r).iter()) {
                *a += g;
            }
        }
    }

    /// Accumulates gradients for a multi-field lookup (inverse of
    /// [`lookup_fields`](Self::lookup_fields)). `grad` has shape
    /// `[B, num_fields*dim]`.
    ///
    /// Contributions add into each row's arena slot in `(b, f)` scan order —
    /// the same association the lane-sharded
    /// [`accumulate_grad_fields_pooled`](Self::accumulate_grad_fields_pooled)
    /// path uses, so the two are bit-identical for any thread count.
    pub fn accumulate_grad_fields(&mut self, flat: &[u32], num_fields: usize, grad: &Matrix) {
        self.accumulate_grad_fields_pooled(flat, num_fields, grad, &Pool::serial());
    }

    /// Lane-sharded parallel version of
    /// [`accumulate_grad_fields`](Self::accumulate_grad_fields).
    ///
    /// Each lane owns the arena rows with `idx % lanes == lane` and scans
    /// the whole batch in `(b, f)` order, so a given row's pending sum is
    /// built in exactly the serial accumulation order no matter how many
    /// lanes run. Lanes touch disjoint rows (enforced by
    /// [`Pool::for_lane_rows`]), so no cross-thread floating-point
    /// reduction happens at all.
    pub fn accumulate_grad_fields_pooled(
        &mut self,
        flat: &[u32],
        num_fields: usize,
        grad: &Matrix,
        pool: &Pool,
    ) {
        let dim = self.dim();
        assert_eq!(
            flat.len() % num_fields,
            0,
            "accumulate_grad_fields: ragged batch"
        );
        let batch = flat.len() / num_fields;
        assert_eq!(grad.rows(), batch, "accumulate_grad_fields: batch mismatch");
        assert_eq!(
            grad.cols(),
            num_fields * dim,
            "accumulate_grad_fields: dim mismatch"
        );
        self.ensure_arena();
        // Touched-id registration is a cheap serial scan; the FP work below
        // is what shards.
        for &idx in flat {
            self.touch(idx);
        }
        let lanes = if pool.is_serial() || flat.len() * dim < POOL_MIN_WORK {
            1
        } else {
            pool.threads()
        };
        if lanes == 1 {
            for b in 0..batch {
                let grow = grad.row(b);
                for f in 0..num_fields {
                    let i = flat[b * num_fields + f] as usize;
                    let acc = &mut self.grad_slab[i * dim..(i + 1) * dim];
                    for (a, &g) in acc.iter_mut().zip(grow[f * dim..(f + 1) * dim].iter()) {
                        *a += g;
                    }
                }
            }
        } else {
            pool.for_lane_rows(&mut self.grad_slab, dim, lanes, |_, mut lane| {
                for b in 0..batch {
                    let grow = grad.row(b);
                    for f in 0..num_fields {
                        let idx = flat[b * num_fields + f] as usize;
                        if !lane.owns(idx) {
                            continue;
                        }
                        let acc = lane.row_mut(idx);
                        for (a, &g) in acc.iter_mut().zip(grow[f * dim..(f + 1) * dim].iter()) {
                            *a += g;
                        }
                    }
                }
            });
        }
    }

    /// Accumulates gradients for a mean-pooled lookup (inverse of
    /// [`lookup_mean_into`](Self::lookup_mean_into)), in the same flat CSR
    /// form: `grad` row `r` is split evenly over
    /// `values[offsets[r]..offsets[r + 1]]`. Allocation-free.
    pub fn accumulate_grad_mean(&mut self, values: &[u32], offsets: &[usize], grad: &Matrix) {
        assert!(
            !offsets.is_empty(),
            "accumulate_grad_mean: offsets needs a final end"
        );
        assert_eq!(
            *offsets.last().unwrap_or(&0),
            values.len(),
            "accumulate_grad_mean: offsets do not cover values"
        );
        assert_eq!(
            grad.rows(),
            offsets.len() - 1,
            "accumulate_grad_mean: batch mismatch"
        );
        assert_eq!(
            grad.cols(),
            self.dim(),
            "accumulate_grad_mean: dim mismatch"
        );
        self.ensure_arena();
        let dim = self.dim();
        for r in 0..offsets.len() - 1 {
            let (start, end) = (offsets[r], offsets[r + 1]);
            assert!(
                start <= end,
                "accumulate_grad_mean: offsets must be monotone"
            );
            if start == end {
                continue;
            }
            let inv = 1.0 / (end - start) as f32;
            for k in start..end {
                let idx = values[k];
                self.touch(idx);
                let i = idx as usize;
                let acc = &mut self.grad_slab[i * dim..(i + 1) * dim];
                for (a, &g) in acc.iter_mut().zip(grad.row(r).iter()) {
                    *a += g * inv;
                }
            }
        }
    }

    /// Number of rows with pending gradient accumulation.
    pub fn touched_rows(&self) -> usize {
        self.touched.len()
    }

    /// Ensures the Adam moment matrices exist.
    fn ensure_moments(&mut self) {
        if self.m.is_none() {
            let (rows, cols) = self.weight.shape();
            self.m = Some(Matrix::zeros(rows, cols));
            self.v = Some(Matrix::zeros(rows, cols));
        }
    }

    /// Ensures the `LazyCatchUp` per-row step bookkeeping exists.
    fn ensure_last_step(&mut self) {
        if self.last_step.is_empty() {
            self.last_step.resize(self.vocab(), 0);
        }
    }

    /// Applies one Adam step according to the active
    /// [`EmbedOptimizerMode`], then clears the accumulated gradients.
    ///
    /// - `Sparse`: touched rows only, ascending-id order, weight decay on
    ///   touched rows only.
    /// - `DenseApply`: every row in `0..vocab` order (untouched rows see a
    ///   zero gradient, so momentum and weight decay still move them).
    /// - `LazyCatchUp`: touched rows only, ascending-id order, but each row
    ///   first replays the steps it skipped as zero-gradient updates — the
    ///   visited-row count is `O(touched)` per step while the resulting
    ///   weights track the `DenseApply` trajectory exactly (bitwise, once
    ///   [`catch_up_all`](Self::catch_up_all) flushes the tail).
    pub fn apply_adam(&mut self, adam: &Adam, weight_decay: f32) {
        match self.opt_mode {
            EmbedOptimizerMode::Sparse => self.apply_adam_sparse(adam, weight_decay),
            EmbedOptimizerMode::DenseApply => self.apply_adam_dense(adam, weight_decay),
            EmbedOptimizerMode::LazyCatchUp => self.apply_adam_lazy(adam, weight_decay),
        }
    }

    /// The historical touched-rows-only step (mode `Sparse`).
    fn apply_adam_sparse(&mut self, adam: &Adam, weight_decay: f32) {
        if self.touched.is_empty() {
            return;
        }
        self.ensure_moments();
        let (bc1, bc2) = adam.bias_corrections();
        let dim = self.dim();
        let mut touched = std::mem::take(&mut self.touched);
        touched.sort_unstable();
        if let (Some(m), Some(v)) = (self.m.as_mut(), self.v.as_mut()) {
            for &idx in &touched {
                let i = idx as usize;
                let grad = &mut self.grad_slab[i * dim..(i + 1) * dim];
                adam.step_row(
                    self.weight.row_mut(i),
                    grad,
                    m.row_mut(i),
                    v.row_mut(i),
                    weight_decay,
                    bc1,
                    bc2,
                );
                grad.fill(0.0);
                self.touched_flags[i] = false;
            }
        }
        touched.clear();
        self.touched = touched;
    }

    /// Full-sweep dense Adam (mode `DenseApply`): the O(vocab·dim) wall the
    /// lazy path exists to avoid, kept as its bitwise reference.
    fn apply_adam_dense(&mut self, adam: &Adam, weight_decay: f32) {
        if self.weight.is_empty() {
            return;
        }
        self.ensure_arena();
        self.ensure_moments();
        let (bc1, bc2) = adam.bias_corrections();
        let dim = self.dim();
        if let (Some(m), Some(v)) = (self.m.as_mut(), self.v.as_mut()) {
            for i in 0..self.weight.rows() {
                let grad = &self.grad_slab[i * dim..(i + 1) * dim];
                adam.step_row(
                    self.weight.row_mut(i),
                    grad,
                    m.row_mut(i),
                    v.row_mut(i),
                    weight_decay,
                    bc1,
                    bc2,
                );
            }
        }
        for &idx in &self.touched {
            let i = idx as usize;
            self.grad_slab[i * dim..(i + 1) * dim].fill(0.0);
            self.touched_flags[i] = false;
        }
        self.touched.clear();
    }

    /// Lazy dense-equivalent Adam (mode `LazyCatchUp`): visits the sorted
    /// touched index only; each visited row first replays its skipped steps
    /// as zero-gradient updates with the bias corrections those steps would
    /// have used, then takes the live step.
    fn apply_adam_lazy(&mut self, adam: &Adam, weight_decay: f32) {
        if self.touched.is_empty() {
            return;
        }
        self.ensure_moments();
        self.ensure_last_step();
        let t = adam.timestep().max(1);
        let (bc1, bc2) = adam.bias_corrections();
        let dim = self.dim();
        let mut touched = std::mem::take(&mut self.touched);
        touched.sort_unstable();
        if let (Some(m), Some(v)) = (self.m.as_mut(), self.v.as_mut()) {
            for &idx in &touched {
                let i = idx as usize;
                let mut s = u64::from(self.last_step[i]) + 1;
                while s < t {
                    let (cb1, cb2) = adam.bias_corrections_at(s);
                    adam.step_row_zero_grad(
                        self.weight.row_mut(i),
                        m.row_mut(i),
                        v.row_mut(i),
                        weight_decay,
                        cb1,
                        cb2,
                    );
                    s += 1;
                }
                let grad = &mut self.grad_slab[i * dim..(i + 1) * dim];
                adam.step_row(
                    self.weight.row_mut(i),
                    grad,
                    m.row_mut(i),
                    v.row_mut(i),
                    weight_decay,
                    bc1,
                    bc2,
                );
                grad.fill(0.0);
                self.touched_flags[i] = false;
                self.last_step[i] = t as u32;
            }
        }
        touched.clear();
        self.touched = touched;
    }

    /// Replays every row's outstanding zero-gradient steps up to `adam`'s
    /// current timestep (fixed `0..vocab` order). After this, a
    /// `LazyCatchUp` run is bitwise identical to a `DenseApply` run of the
    /// same touch/gradient sequence. No-op in the other modes. Call once at
    /// the end of training (or before exporting/serving weights).
    pub fn catch_up_all(&mut self, adam: &Adam, weight_decay: f32) {
        if self.opt_mode != EmbedOptimizerMode::LazyCatchUp || self.weight.is_empty() {
            return;
        }
        let t = adam.timestep();
        if t == 0 {
            return;
        }
        self.ensure_moments();
        self.ensure_last_step();
        if let (Some(m), Some(v)) = (self.m.as_mut(), self.v.as_mut()) {
            for i in 0..self.weight.rows() {
                let mut s = u64::from(self.last_step[i]) + 1;
                while s <= t {
                    let (cb1, cb2) = adam.bias_corrections_at(s);
                    adam.step_row_zero_grad(
                        self.weight.row_mut(i),
                        m.row_mut(i),
                        v.row_mut(i),
                        weight_decay,
                        cb1,
                        cb2,
                    );
                    s += 1;
                }
                self.last_step[i] = t as u32;
            }
        }
    }

    /// Applies plain SGD (tests / ablations), then clears. Touched rows in
    /// ascending-id order, except in `DenseApply` mode, which sweeps every
    /// row so weight decay hits the whole table. `LazyCatchUp` behaves like
    /// `Sparse` here: with zero gradient and no decay an SGD step is a
    /// no-op, so there is nothing to catch up on the production (wd = 0)
    /// path, and the lazy machinery is Adam-specific.
    pub fn apply_sgd(&mut self, lr: f32, weight_decay: f32) {
        if self.opt_mode == EmbedOptimizerMode::DenseApply {
            self.apply_sgd_dense(lr, weight_decay);
            return;
        }
        let dim = self.dim();
        let mut touched = std::mem::take(&mut self.touched);
        touched.sort_unstable();
        for &idx in &touched {
            let i = idx as usize;
            let grad = &mut self.grad_slab[i * dim..(i + 1) * dim];
            let row = self.weight.row_mut(i);
            for (w, &g) in row.iter_mut().zip(grad.iter()) {
                *w -= lr * (g + weight_decay * *w);
            }
            grad.fill(0.0);
            self.touched_flags[i] = false;
        }
        touched.clear();
        self.touched = touched;
    }

    /// Full-sweep SGD (mode `DenseApply`).
    fn apply_sgd_dense(&mut self, lr: f32, weight_decay: f32) {
        if self.weight.is_empty() {
            return;
        }
        self.ensure_arena();
        let dim = self.dim();
        for i in 0..self.weight.rows() {
            let grad = &self.grad_slab[i * dim..(i + 1) * dim];
            let row = self.weight.row_mut(i);
            for (w, &g) in row.iter_mut().zip(grad.iter()) {
                *w -= lr * (g + weight_decay * *w);
            }
        }
        for &idx in &self.touched {
            let i = idx as usize;
            self.grad_slab[i * dim..(i + 1) * dim].fill(0.0);
            self.touched_flags[i] = false;
        }
        self.touched.clear();
    }

    /// Discards pending gradients without applying them.
    pub fn clear_grads(&mut self) {
        let dim = self.dim();
        for &idx in &self.touched {
            let i = idx as usize;
            self.grad_slab[i * dim..(i + 1) * dim].fill(0.0);
            self.touched_flags[i] = false;
        }
        self.touched.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, DenseOptimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_table() -> EmbeddingTable {
        let mut t = EmbeddingTable::zeros(4, 2);
        for r in 0..4 {
            for c in 0..2 {
                t.weight_mut().set(r, c, (r * 2 + c) as f32);
            }
        }
        t
    }

    #[test]
    fn lookup_copies_rows() {
        let t = small_table();
        let out = t.lookup(&[2, 0, 2]);
        assert_eq!(out.row(0), &[4.0, 5.0]);
        assert_eq!(out.row(1), &[0.0, 1.0]);
        assert_eq!(out.row(2), &[4.0, 5.0]);
    }

    #[test]
    fn lookup_fields_layout() {
        let t = small_table();
        // 2 examples x 2 fields
        let flat = [0u32, 1, 2, 3];
        let out = t.lookup_fields(&flat, 2);
        assert_eq!(out.shape(), (2, 4));
        assert_eq!(out.row(0), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn lookup_fields_into_reuses_buffer() {
        let t = small_table();
        let mut out = Matrix::zeros(7, 3);
        t.lookup_fields_into(&[0u32, 1, 2, 3], 2, &mut out);
        assert_eq!(out.shape(), (2, 4));
        assert_eq!(out.row(0), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn lookup_mean_pools() {
        let t = small_table();
        // CSR batch: {0, 2}, {}, {3}.
        let values = [0u32, 2, 3];
        let offsets = [0usize, 2, 2, 3];
        let mut out = Matrix::zeros(0, 0);
        t.lookup_mean_into(&values, &offsets, &mut out);
        assert_eq!(out.shape(), (3, 2));
        assert_eq!(out.row(0), &[2.0, 3.0]); // mean of [0,1] and [4,5]
        assert_eq!(out.row(1), &[0.0, 0.0]);
        assert_eq!(out.row(2), &[6.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "offsets do not cover values")]
    fn lookup_mean_rejects_uncovering_offsets() {
        let t = small_table();
        let mut out = Matrix::zeros(0, 0);
        t.lookup_mean_into(&[0u32, 1], &[0usize, 1], &mut out);
    }

    #[test]
    fn grad_accumulation_sums_repeated_indices() {
        let mut t = small_table();
        let grad = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        t.accumulate_grad(&[1, 1], &grad);
        assert_eq!(t.touched_rows(), 1);
        t.apply_sgd(1.0, 0.0);
        // Row 1 started [2,3]; grad sum [3,3] -> [−1, 0]
        assert_eq!(t.row(1), &[-1.0, 0.0]);
        assert_eq!(t.touched_rows(), 0);
    }

    #[test]
    fn fields_grad_roundtrip() {
        let mut t = small_table();
        let flat = [0u32, 1];
        let grad = Matrix::from_rows(&[&[0.5, 0.5, 1.5, 1.5]]);
        t.accumulate_grad_fields(&flat, 2, &grad);
        t.apply_sgd(1.0, 0.0);
        assert_eq!(t.row(0), &[-0.5, 0.5]);
        assert_eq!(t.row(1), &[0.5, 1.5]);
    }

    #[test]
    fn mean_grad_splits_evenly() {
        let mut t = small_table();
        // CSR batch: one example with value set {0, 1}.
        let grad = Matrix::from_rows(&[&[2.0, 2.0]]);
        t.accumulate_grad_mean(&[0u32, 1], &[0usize, 2], &grad);
        t.apply_sgd(1.0, 0.0);
        // Each of rows 0 and 1 receives grad 1.0.
        assert_eq!(t.row(0), &[-1.0, 0.0]);
        assert_eq!(t.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn mean_roundtrip_skips_empty_sets() {
        let mut t = small_table();
        // Batch of two: {} then {3}; the empty set neither reads nor
        // writes any row.
        let grad = Matrix::from_rows(&[&[5.0, 5.0], &[1.0, 1.0]]);
        t.accumulate_grad_mean(&[3u32], &[0usize, 0, 1], &grad);
        assert_eq!(t.touched_rows(), 1);
        t.apply_sgd(1.0, 0.0);
        assert_eq!(t.row(3), &[5.0, 6.0]);
    }

    #[test]
    fn arena_rows_are_rezeroed_after_apply() {
        // A second step touching the same row must start from a clean slab
        // row, not the previous step's gradient.
        let mut t = small_table();
        t.accumulate_grad(&[2], &Matrix::from_rows(&[&[1.0, 0.0]]));
        t.apply_sgd(1.0, 0.0);
        assert_eq!(t.row(2), &[3.0, 5.0]);
        t.accumulate_grad(&[2], &Matrix::from_rows(&[&[0.0, 2.0]]));
        t.apply_sgd(1.0, 0.0);
        assert_eq!(t.row(2), &[3.0, 3.0]);
    }

    #[test]
    fn clear_grads_rezeroes_touched_arena_rows() {
        let mut t = small_table();
        t.accumulate_grad(&[0], &Matrix::filled(1, 2, 1.0));
        t.clear_grads();
        assert_eq!(t.touched_rows(), 0);
        let before = t.row(0).to_vec();
        // A fresh accumulate must not see the discarded gradient.
        t.accumulate_grad(&[0], &Matrix::filled(1, 2, 0.0));
        t.apply_sgd(1.0, 0.0);
        assert_eq!(t.row(0), before.as_slice());
    }

    #[test]
    fn untouched_rows_not_updated_by_adam() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut t = EmbeddingTable::new(&mut rng, 10, 4);
        let before_row9 = t.row(9).to_vec();
        let mut adam = Adam::with_lr_eps(0.01, 1e-8);
        let grad = Matrix::filled(1, 4, 1.0);
        t.accumulate_grad(&[3], &grad);
        adam.begin_step();
        t.apply_adam(&adam, 0.0);
        assert_eq!(t.row(9), before_row9.as_slice());
        // Touched row moved.
        assert!(t.row(3).iter().zip(before_row9.iter()).any(|(a, b)| a != b));
    }

    #[test]
    fn sparse_adam_matches_dense_adam_for_always_touched_row() {
        // A row touched every step must follow exactly the dense Adam
        // trajectory of an equivalent parameter.
        let mut table = EmbeddingTable::zeros(1, 3);
        table.weight_mut().fill_with(1.0);
        let mut dense = crate::param::Parameter::new(Matrix::filled(1, 3, 1.0));
        let mut adam = Adam::with_lr_eps(0.05, 1e-8);
        for step in 0..20 {
            let g = 0.1 * (step as f32 + 1.0);
            let grad = Matrix::filled(1, 3, g);
            table.accumulate_grad(&[0], &grad);
            dense.grad = grad.clone();
            adam.begin_step();
            table.apply_adam(&adam, 0.0);
            adam.step(&mut dense, 0.0);
        }
        for (a, b) in table.row(0).iter().zip(dense.value.as_slice().iter()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn pooled_lookup_and_sharded_grads_match_serial_bitwise() {
        // Large enough to clear POOL_MIN_WORK so the parallel paths run.
        let (batch, fields, dim, vocab) = (256, 8, 8, 37);
        let mut rng = StdRng::seed_from_u64(12);
        let mut serial_t = EmbeddingTable::new(&mut rng, vocab, dim);
        let mut pooled_t = EmbeddingTable::zeros(vocab, dim);
        pooled_t
            .weight_mut()
            .as_mut_slice()
            .copy_from_slice(serial_t.weight().as_slice());
        let flat: Vec<u32> = (0..batch * fields)
            .map(|i| ((i * 7 + i / 11) % vocab) as u32)
            .collect();
        let grad = Matrix::from_fn(batch, fields * dim, |r, c| {
            ((r * 31 + c) as f32 * 0.01).sin()
        });
        let pool = optinter_tensor::Pool::new(4);
        let lookup_serial = serial_t.lookup_fields(&flat, fields);
        let lookup_pooled = pooled_t.lookup_fields_pooled(&flat, fields, &pool);
        assert_eq!(lookup_serial.as_slice(), lookup_pooled.as_slice());
        serial_t.accumulate_grad_fields(&flat, fields, &grad);
        pooled_t.accumulate_grad_fields_pooled(&flat, fields, &grad, &pool);
        serial_t.apply_sgd(1.0, 0.0);
        pooled_t.apply_sgd(1.0, 0.0);
        for (a, b) in serial_t
            .weight()
            .as_slice()
            .iter()
            .zip(pooled_t.weight().as_slice())
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "sharded grads diverged: {a} vs {b}"
            );
        }
    }

    #[test]
    fn clear_grads_discards_pending() {
        let mut t = small_table();
        t.accumulate_grad(&[0], &Matrix::filled(1, 2, 1.0));
        t.clear_grads();
        let before = t.row(0).to_vec();
        t.apply_sgd(1.0, 0.0);
        assert_eq!(t.row(0), before.as_slice());
    }

    /// Drives `steps` Adam steps over a fixed pseudo-random touch/gradient
    /// sequence (some steps touch nothing at all) and returns the final
    /// weights. Shared by the mode-equivalence tests below.
    fn run_mode(mode: EmbedOptimizerMode, weight_decay: f32, steps: u64) -> Vec<f32> {
        let (vocab, dim) = (13usize, 3usize);
        let mut rng = StdRng::seed_from_u64(41);
        let mut t = EmbeddingTable::new(&mut rng, vocab, dim);
        t.set_optimizer_mode(mode);
        let mut adam = Adam::with_lr_eps(0.02, 1e-8);
        for step in 0..steps {
            adam.begin_step();
            // Steps 5 and 9 touch no row; the rest touch a drifting pair.
            if step != 5 && step != 9 {
                let a = ((step * 7 + 3) % vocab as u64) as u32;
                let b = ((step * 5 + 1) % vocab as u64) as u32;
                let g = 0.05 * (step as f32 + 1.0);
                let grad = Matrix::from_fn(2, dim, |r, c| g * (1.0 + r as f32 + 0.1 * c as f32));
                t.accumulate_grad(&[a, b], &grad);
            }
            t.apply_adam(&adam, weight_decay);
        }
        t.catch_up_all(&adam, weight_decay);
        t.weight().as_slice().to_vec()
    }

    #[test]
    fn lazy_catch_up_matches_dense_apply_bitwise() {
        for &wd in &[0.0f32, 1e-2] {
            let dense = run_mode(EmbedOptimizerMode::DenseApply, wd, 17);
            let lazy = run_mode(EmbedOptimizerMode::LazyCatchUp, wd, 17);
            for (k, (a, b)) in dense.iter().zip(lazy.iter()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "wd={wd}: element {k} diverges: dense {a} vs lazy {b}"
                );
            }
        }
    }

    #[test]
    fn sparse_mode_differs_from_dense_only_on_untouched_rows() {
        // With wd = 0, a never-touched row has m = v = 0 and a zero
        // gradient, so even the dense sweep leaves it exactly in place;
        // rows touched at every step agree across all three modes.
        let dense = run_mode(EmbedOptimizerMode::DenseApply, 0.0, 6);
        let sparse = run_mode(EmbedOptimizerMode::Sparse, 0.0, 6);
        let lazy = run_mode(EmbedOptimizerMode::LazyCatchUp, 0.0, 6);
        assert_eq!(dense.len(), sparse.len());
        // Sparse differs from dense somewhere (momentum carry-over on rows
        // skipped between touches)...
        assert!(
            dense.iter().zip(sparse.iter()).any(|(a, b)| a != b),
            "expected sparse and dense trajectories to diverge"
        );
        // ...while lazy+catch-up matches dense everywhere (checked bitwise
        // in lazy_catch_up_matches_dense_apply_bitwise; spot-check here).
        assert_eq!(dense, lazy);
    }

    #[test]
    fn dense_apply_weight_decay_moves_untouched_rows() {
        let mut t = EmbeddingTable::zeros(4, 2);
        t.weight_mut().fill_with(1.0);
        t.set_optimizer_mode(EmbedOptimizerMode::DenseApply);
        let mut adam = Adam::with_lr_eps(0.1, 1e-8);
        adam.begin_step();
        t.accumulate_grad(&[0], &Matrix::filled(1, 2, 1.0));
        t.apply_adam(&adam, 0.5);
        // Row 3 was never touched but decays under the dense sweep.
        assert!(
            t.row(3)[0] < 1.0,
            "untouched row did not decay: {:?}",
            t.row(3)
        );
    }
}
