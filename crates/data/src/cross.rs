//! Cross-product transformation (paper Eq. 4).
//!
//! For every field pair `(i, j)` the cross-product transformed feature of a
//! row is the combination of its raw values, `x^m_(i,j) =
//! onehot(x_i × x_j)`. Like the original features, cross values below a
//! frequency threshold collapse into a per-pair OOV bucket — this is where
//! the memorized method's feature-sparsity problem (paper Sec. I) shows up,
//! so the thresholding is faithful to the paper's preprocessing.
//!
//! Building these vocabularies is the "#cross values" blow-up the paper
//! flags as the cost of memorization: every row contributes `M(M-1)/2`
//! pair combinations. [`CrossVocab::build_with_pool`] shards that loop over
//! *pairs* — each worker owns a disjoint pair subset and builds its
//! [`PairVocab`]s alone, so there is no cross-thread merge and the result
//! is bit-identical to the serial build for any thread count. Hashing uses
//! the seed-free open-addressing [`OpenTable`] instead of SipHash
//! `HashMap`s; id assignment still sorts kept raw values, so encoded
//! datasets are byte-identical to the historical `HashMap` path.

use crate::hash::OpenTable;
use crate::schema::{PairIndexer, Schema};
use optinter_tensor::Pool;

/// Raw cross value of a pair: a single u64 combining both raw field values.
#[inline]
pub fn raw_cross(vi: u32, vj: u32) -> u64 {
    ((vi as u64) << 32) | vj as u64
}

/// Calls `f(p, raw)` for every pair `p` of `row` in flat pair order, with
/// `raw` the pair's raw cross value.
///
/// This is the single definition of the pair-iteration pattern shared by
/// vocabulary counting and both encode paths, so the hash and gather sides
/// can never drift apart.
#[inline]
pub fn for_pair_crosses(indexer: PairIndexer, row: &[u32], mut f: impl FnMut(usize, u64)) {
    debug_assert_eq!(row.len(), indexer.num_fields());
    for (p, (i, j)) in indexer.iter().enumerate() {
        f(p, raw_cross(row[i], row[j]));
    }
}

/// Vocabulary of one pair's cross-product values.
#[derive(Debug, Clone)]
pub struct PairVocab {
    /// Raw cross value -> local id (1-based; 0 is the OOV bucket, which is
    /// exactly what [`OpenTable::get`] returns for absent keys).
    map: OpenTable,
    size: u32,
}

impl PairVocab {
    /// The empty vocabulary: every value is OOV.
    fn empty() -> Self {
        Self {
            map: OpenTable::new(),
            size: 1,
        }
    }

    fn from_counts(counts: &OpenTable, min_count: u32) -> Self {
        // Sorted ascending: ids are a pure function of the counts,
        // independent of insertion order, matching the historical
        // sort-then-assign HashMap path byte for byte.
        let kept = counts.keys_with_at_least(min_count);
        let mut map = OpenTable::with_capacity(kept.len());
        for (i, &v) in kept.iter().enumerate() {
            map.insert(v, i as u32 + 1);
        }
        let size = kept.len() as u32 + 1;
        Self { map, size }
    }

    /// Local id of a raw cross value (0 = OOV).
    pub fn encode(&self, raw: u64) -> u32 {
        self.map.get(raw)
    }

    /// Vocabulary size including OOV.
    pub fn size(&self) -> u32 {
        self.size
    }
}

/// Cross-product vocabularies for all pairs plus the global id layout.
#[derive(Debug, Clone)]
pub struct CrossVocab {
    pairs: Vec<PairVocab>,
    offsets: Vec<u32>,
    total: u32,
    indexer: PairIndexer,
}

impl CrossVocab {
    /// Builds cross vocabularies by counting pair combinations over the
    /// given (training) rows. `rows` is row-major `[N * M]` of raw values.
    ///
    /// Serial convenience wrapper around [`CrossVocab::build_with_pool`].
    pub fn build(schema: &Schema, rows: &[u32], min_count: u32) -> Self {
        Self::build_with_pool(schema, rows, min_count, &Pool::serial())
    }

    /// Builds cross vocabularies with the pair-count loop sharded across
    /// `pool` (owner computes: each pair's count table and vocabulary are
    /// built entirely by one worker, so the result is bit-identical to the
    /// serial build for any thread count).
    pub fn build_with_pool(schema: &Schema, rows: &[u32], min_count: u32, pool: &Pool) -> Self {
        let m = schema.num_fields();
        assert_eq!(rows.len() % m, 0, "cross vocab: ragged rows");
        let n = rows.len() / m;
        let indexer = schema.pairs();
        let np = indexer.num_pairs();
        let mut pairs: Vec<PairVocab> = (0..np).map(|_| PairVocab::empty()).collect();
        pool.for_each_mut(&mut pairs, |p, pv| {
            let (i, j) = indexer.pair_at(p);
            // Distinct combinations are bounded by the row count; pre-sizing
            // to it (capped so giant datasets don't over-allocate) makes the
            // counting pass rehash-free.
            let mut counts = OpenTable::with_capacity(n.min(1 << 20));
            for r in 0..n {
                counts.add(raw_cross(rows[r * m + i], rows[r * m + j]), 1);
            }
            *pv = PairVocab::from_counts(&counts, min_count);
        });
        let mut offsets = Vec::with_capacity(np);
        let mut total = 0u32;
        for pv in &pairs {
            offsets.push(total);
            total += pv.size();
        }
        Self {
            pairs,
            offsets,
            total,
            indexer,
        }
    }

    /// Number of pairs.
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Total global cross vocabulary size (the paper's "#cross value").
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Per-pair vocabulary sizes (OOV included).
    pub fn sizes(&self) -> Vec<u32> {
        self.pairs.iter().map(|p| p.size()).collect()
    }

    /// Global offset of pair `p`.
    pub fn offset(&self, p: usize) -> u32 {
        self.offsets[p]
    }

    /// Global cross id of pair `p` for raw values `(vi, vj)`.
    pub fn encode(&self, p: usize, vi: u32, vj: u32) -> u32 {
        self.offsets[p] + self.pairs[p].encode(raw_cross(vi, vj))
    }

    /// Encodes one row's cross features into `out` (length `P`).
    #[inline]
    fn encode_row_into(&self, row: &[u32], out: &mut [u32]) {
        debug_assert_eq!(out.len(), self.num_pairs());
        for_pair_crosses(self.indexer, row, |p, raw| {
            out[p] = self.offsets[p] + self.pairs[p].encode(raw);
        });
    }

    /// Encodes every row's cross features: output is row-major `[N * P]`.
    ///
    /// Serial convenience wrapper around
    /// [`CrossVocab::encode_rows_with_pool`].
    pub fn encode_rows(&self, schema: &Schema, rows: &[u32]) -> Vec<u32> {
        self.encode_rows_with_pool(schema, rows, &Pool::serial())
    }

    /// Encodes every row's cross features with output rows sharded across
    /// `pool`. Each output row is written by exactly one worker, so the
    /// result is byte-identical to the serial encode.
    pub fn encode_rows_with_pool(&self, schema: &Schema, rows: &[u32], pool: &Pool) -> Vec<u32> {
        let m = schema.num_fields();
        assert_eq!(rows.len() % m, 0, "encode_rows: ragged rows");
        let n = rows.len() / m;
        let np = self.num_pairs();
        let mut out = vec![0u32; n * np];
        pool.for_rows(&mut out, np.max(1), |r, out_row| {
            self.encode_row_into(&rows[r * m..(r + 1) * m], out_row);
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema3() -> Schema {
        Schema::new(vec![4, 4, 4])
    }

    #[test]
    fn raw_cross_is_injective() {
        assert_ne!(raw_cross(1, 2), raw_cross(2, 1));
        assert_ne!(raw_cross(0, 5), raw_cross(5, 0));
        assert_eq!(raw_cross(3, 3), raw_cross(3, 3));
    }

    #[test]
    fn counts_and_threshold() {
        let schema = schema3();
        // Rows: (1,2,3) twice, (1,2,0) once.
        let rows = vec![1, 2, 3, 1, 2, 3, 1, 2, 0];
        let cv = CrossVocab::build(&schema, &rows, 2);
        // Pair (0,1) = (1,2) appears 3x -> kept.
        assert_ne!(cv.encode(0, 1, 2), cv.offset(0));
        // Pair (1,2) = (2,3) appears twice -> kept; (2,0) once -> OOV.
        assert_ne!(cv.encode(2, 2, 3), cv.offset(2));
        assert_eq!(cv.encode(2, 2, 0), cv.offset(2));
    }

    #[test]
    fn encode_rows_shape_and_values() {
        let schema = schema3();
        let rows = vec![1, 2, 3, 1, 2, 3];
        let cv = CrossVocab::build(&schema, &rows, 1);
        let encoded = cv.encode_rows(&schema, &rows);
        assert_eq!(encoded.len(), 2 * 3);
        // Both rows identical -> identical encodings.
        assert_eq!(&encoded[0..3], &encoded[3..6]);
        // Ids fall inside each pair's bucket.
        for (p, &id) in encoded[0..3].iter().enumerate() {
            assert!(id >= cv.offset(p));
            assert!(id < cv.offset(p) + cv.sizes()[p]);
        }
    }

    #[test]
    fn total_is_sum_of_sizes() {
        let schema = schema3();
        let rows = vec![0, 1, 2, 3, 0, 1, 2, 3, 0];
        let cv = CrossVocab::build(&schema, &rows, 1);
        assert_eq!(cv.total(), cv.sizes().iter().sum::<u32>());
    }

    #[test]
    fn unseen_combination_is_oov() {
        let schema = schema3();
        let rows = vec![1, 1, 1];
        let cv = CrossVocab::build(&schema, &rows, 1);
        assert_eq!(cv.encode(0, 3, 3), cv.offset(0));
    }

    /// Reference build matching the historical `HashMap` implementation:
    /// per-pair SipHash counting, sort kept values, assign ids 1..=K.
    fn reference_build_sizes_and_encode(
        schema: &Schema,
        rows: &[u32],
        min_count: u32,
    ) -> (Vec<u32>, Vec<u32>) {
        use std::collections::HashMap;
        let m = schema.num_fields();
        let n = rows.len() / m;
        let indexer = schema.pairs();
        let np = indexer.num_pairs();
        let mut counts: Vec<HashMap<u64, u32>> = vec![HashMap::new(); np];
        for r in 0..n {
            let row = &rows[r * m..(r + 1) * m];
            for (p, (i, j)) in indexer.iter().enumerate() {
                *counts[p].entry(raw_cross(row[i], row[j])).or_insert(0) += 1;
            }
        }
        let maps: Vec<HashMap<u64, u32>> = counts
            .iter()
            .map(|c| {
                let mut kept: Vec<u64> = c
                    .iter()
                    .filter(|&(_, &cnt)| cnt >= min_count)
                    .map(|(&v, _)| v)
                    .collect();
                kept.sort_unstable();
                kept.iter()
                    .enumerate()
                    .map(|(i, &v)| (v, i as u32 + 1))
                    .collect()
            })
            .collect();
        let sizes: Vec<u32> = maps.iter().map(|m| m.len() as u32 + 1).collect();
        let mut offsets = vec![0u32; np];
        let mut total = 0u32;
        for (p, &s) in sizes.iter().enumerate() {
            offsets[p] = total;
            total += s;
        }
        let mut encoded = Vec::with_capacity(n * np);
        for r in 0..n {
            let row = &rows[r * m..(r + 1) * m];
            for (p, (i, j)) in indexer.iter().enumerate() {
                let raw = raw_cross(row[i], row[j]);
                encoded.push(offsets[p] + maps[p].get(&raw).copied().unwrap_or(0));
            }
        }
        (sizes, encoded)
    }

    #[test]
    fn open_addressing_build_matches_hashmap_reference() {
        let schema = Schema::new(vec![7, 5, 9, 3]);
        // Deterministic pseudo-random rows with plenty of repeats.
        let rows: Vec<u32> = (0..400 * 4)
            .map(|i| {
                let h = crate::hash::splitmix64(i as u64 ^ 0xC0FFEE);
                (h % [7, 5, 9, 3][i % 4]) as u32
            })
            .collect();
        for min_count in [1, 2, 4] {
            let cv = CrossVocab::build(&schema, &rows, min_count);
            let (ref_sizes, ref_encoded) =
                reference_build_sizes_and_encode(&schema, &rows, min_count);
            assert_eq!(cv.sizes(), ref_sizes, "min_count={min_count}");
            assert_eq!(
                cv.encode_rows(&schema, &rows),
                ref_encoded,
                "min_count={min_count}"
            );
        }
    }

    #[test]
    fn pooled_build_and_encode_are_byte_identical_to_serial() {
        let schema = Schema::new(vec![11, 6, 4, 8, 5]);
        let rows: Vec<u32> = (0..300 * 5)
            .map(|i| {
                let h = crate::hash::splitmix64(i as u64 ^ 0xFEED);
                (h % [11, 6, 4, 8, 5][i % 5]) as u32
            })
            .collect();
        let serial = CrossVocab::build(&schema, &rows, 2);
        let serial_encoded = serial.encode_rows(&schema, &rows);
        for threads in [2usize, 4] {
            let pool = Pool::new(threads);
            let cv = CrossVocab::build_with_pool(&schema, &rows, 2, &pool);
            assert_eq!(cv.sizes(), serial.sizes(), "threads={threads}");
            assert_eq!(cv.total(), serial.total(), "threads={threads}");
            assert_eq!(
                cv.encode_rows_with_pool(&schema, &rows, &pool),
                serial_encoded,
                "threads={threads}"
            );
        }
    }
}
