//! Cross-product transformation (paper Eq. 4).
//!
//! For every field pair `(i, j)` the cross-product transformed feature of a
//! row is the combination of its raw values, `x^m_(i,j) =
//! onehot(x_i × x_j)`. Like the original features, cross values below a
//! frequency threshold collapse into a per-pair OOV bucket — this is where
//! the memorized method's feature-sparsity problem (paper Sec. I) shows up,
//! so the thresholding is faithful to the paper's preprocessing.

use crate::schema::{PairIndexer, Schema};
use std::collections::HashMap;

/// Raw cross value of a pair: a single u64 combining both raw field values.
#[inline]
pub fn raw_cross(vi: u32, vj: u32) -> u64 {
    ((vi as u64) << 32) | vj as u64
}

/// Vocabulary of one pair's cross-product values.
#[derive(Debug, Clone)]
pub struct PairVocab {
    map: HashMap<u64, u32>,
    size: u32,
}

impl PairVocab {
    fn from_counts(counts: &HashMap<u64, u32>, min_count: u32) -> Self {
        // lint: allow(hash-iter, reason="collected into a Vec and fully sorted before id assignment")
        let mut kept: Vec<u64> = counts
            .iter()
            .filter(|&(_, &c)| c >= min_count)
            .map(|(&v, _)| v)
            .collect();
        kept.sort_unstable(); // deterministic: ids are a pure function of the counts
        let map: HashMap<u64, u32> = kept
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32 + 1))
            .collect();
        let size = map.len() as u32 + 1;
        Self { map, size }
    }

    /// Local id of a raw cross value (0 = OOV).
    pub fn encode(&self, raw: u64) -> u32 {
        self.map.get(&raw).copied().unwrap_or(0)
    }

    /// Vocabulary size including OOV.
    pub fn size(&self) -> u32 {
        self.size
    }
}

/// Cross-product vocabularies for all pairs plus the global id layout.
#[derive(Debug, Clone)]
pub struct CrossVocab {
    pairs: Vec<PairVocab>,
    offsets: Vec<u32>,
    total: u32,
    indexer: PairIndexer,
}

impl CrossVocab {
    /// Builds cross vocabularies by counting pair combinations over the
    /// given (training) rows. `rows` is row-major `[N * M]` of raw values.
    pub fn build(schema: &Schema, rows: &[u32], min_count: u32) -> Self {
        let m = schema.num_fields();
        assert_eq!(rows.len() % m, 0, "cross vocab: ragged rows");
        let n = rows.len() / m;
        let indexer = schema.pairs();
        let np = indexer.num_pairs();
        let mut counts: Vec<HashMap<u64, u32>> = vec![HashMap::new(); np];
        for r in 0..n {
            let row = &rows[r * m..(r + 1) * m];
            for (p, (i, j)) in indexer.iter().enumerate() {
                *counts[p].entry(raw_cross(row[i], row[j])).or_insert(0) += 1;
            }
        }
        let pairs: Vec<PairVocab> = counts
            .iter()
            .map(|c| PairVocab::from_counts(c, min_count))
            .collect();
        let mut offsets = Vec::with_capacity(np);
        let mut total = 0u32;
        for pv in &pairs {
            offsets.push(total);
            total += pv.size();
        }
        Self {
            pairs,
            offsets,
            total,
            indexer,
        }
    }

    /// Number of pairs.
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Total global cross vocabulary size (the paper's "#cross value").
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Per-pair vocabulary sizes (OOV included).
    pub fn sizes(&self) -> Vec<u32> {
        self.pairs.iter().map(|p| p.size()).collect()
    }

    /// Global offset of pair `p`.
    pub fn offset(&self, p: usize) -> u32 {
        self.offsets[p]
    }

    /// Global cross id of pair `p` for raw values `(vi, vj)`.
    pub fn encode(&self, p: usize, vi: u32, vj: u32) -> u32 {
        self.offsets[p] + self.pairs[p].encode(raw_cross(vi, vj))
    }

    /// Encodes every row's cross features: output is row-major `[N * P]`.
    pub fn encode_rows(&self, schema: &Schema, rows: &[u32]) -> Vec<u32> {
        let m = schema.num_fields();
        assert_eq!(rows.len() % m, 0, "encode_rows: ragged rows");
        let n = rows.len() / m;
        let mut out = Vec::with_capacity(n * self.num_pairs());
        for r in 0..n {
            let row = &rows[r * m..(r + 1) * m];
            for (p, (i, j)) in self.indexer.iter().enumerate() {
                out.push(self.encode(p, row[i], row[j]));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema3() -> Schema {
        Schema::new(vec![4, 4, 4])
    }

    #[test]
    fn raw_cross_is_injective() {
        assert_ne!(raw_cross(1, 2), raw_cross(2, 1));
        assert_ne!(raw_cross(0, 5), raw_cross(5, 0));
        assert_eq!(raw_cross(3, 3), raw_cross(3, 3));
    }

    #[test]
    fn counts_and_threshold() {
        let schema = schema3();
        // Rows: (1,2,3) twice, (1,2,0) once.
        let rows = vec![1, 2, 3, 1, 2, 3, 1, 2, 0];
        let cv = CrossVocab::build(&schema, &rows, 2);
        // Pair (0,1) = (1,2) appears 3x -> kept.
        assert_ne!(cv.encode(0, 1, 2), cv.offset(0));
        // Pair (1,2) = (2,3) appears twice -> kept; (2,0) once -> OOV.
        assert_ne!(cv.encode(2, 2, 3), cv.offset(2));
        assert_eq!(cv.encode(2, 2, 0), cv.offset(2));
    }

    #[test]
    fn encode_rows_shape_and_values() {
        let schema = schema3();
        let rows = vec![1, 2, 3, 1, 2, 3];
        let cv = CrossVocab::build(&schema, &rows, 1);
        let encoded = cv.encode_rows(&schema, &rows);
        assert_eq!(encoded.len(), 2 * 3);
        // Both rows identical -> identical encodings.
        assert_eq!(&encoded[0..3], &encoded[3..6]);
        // Ids fall inside each pair's bucket.
        for (p, &id) in encoded[0..3].iter().enumerate() {
            assert!(id >= cv.offset(p));
            assert!(id < cv.offset(p) + cv.sizes()[p]);
        }
    }

    #[test]
    fn total_is_sum_of_sizes() {
        let schema = schema3();
        let rows = vec![0, 1, 2, 3, 0, 1, 2, 3, 0];
        let cv = CrossVocab::build(&schema, &rows, 1);
        assert_eq!(cv.total(), cv.sizes().iter().sum::<u32>());
    }

    #[test]
    fn unseen_combination_is_oov() {
        let schema = schema3();
        let rows = vec![1, 1, 1];
        let cv = CrossVocab::build(&schema, &rows, 1);
        assert_eq!(cv.encode(0, 3, 3), cv.offset(0));
    }
}
