//! Deterministic hash-based pseudo-random number generation.
//!
//! The planted ground-truth model needs a weight for *every possible*
//! feature value and cross-value combination — far too many to materialise.
//! Instead, weights are defined as pure functions of `(seed, identifiers)`
//! through SplitMix64, so any weight can be recomputed on demand and the
//! ground truth is fully deterministic.

/// One round of the SplitMix64 mixing function.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines a seed with up to four identifiers into one well-mixed u64.
pub fn combine(seed: u64, parts: &[u64]) -> u64 {
    let mut h = splitmix64(seed ^ 0xD1B5_4A32_D192_ED03);
    for &p in parts {
        h = splitmix64(h ^ p.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    h
}

/// Uniform value in `[0, 1)` derived from a hash.
#[inline]
pub fn hash_unit(h: u64) -> f32 {
    // Use the top 24 bits for an exactly-representable f32 in [0, 1).
    (h >> 40) as f32 / (1u64 << 24) as f32
}

/// Approximately standard-normal value derived from a hash.
///
/// Sum of four independent uniforms, centred and scaled (Irwin–Hall with
/// n = 4 has variance 1/3; scaling by sqrt(3) gives unit variance). The
/// tails are lighter than a true Gaussian, which is fine for planting
/// effect weights.
pub fn hash_normal(seed: u64, parts: &[u64]) -> f32 {
    let h = combine(seed, parts);
    let u1 = hash_unit(h);
    let u2 = hash_unit(splitmix64(h ^ 1));
    let u3 = hash_unit(splitmix64(h ^ 2));
    let u4 = hash_unit(splitmix64(h ^ 3));
    (u1 + u2 + u3 + u4 - 2.0) * (3.0f32).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
        // Single-bit input changes should flip many output bits.
        let diff = (splitmix64(1) ^ splitmix64(0)).count_ones();
        assert!(diff > 16, "poor avalanche: {diff} bits");
    }

    #[test]
    fn combine_depends_on_all_parts() {
        let a = combine(7, &[1, 2, 3]);
        assert_ne!(a, combine(7, &[1, 2, 4]));
        assert_ne!(a, combine(7, &[2, 1, 3]));
        assert_ne!(a, combine(8, &[1, 2, 3]));
        assert_eq!(a, combine(7, &[1, 2, 3]));
    }

    #[test]
    fn hash_unit_in_range() {
        for i in 0..1000u64 {
            let u = hash_unit(splitmix64(i));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn hash_normal_moments() {
        let n = 20_000u64;
        let xs: Vec<f32> = (0..n).map(|i| hash_normal(99, &[i])).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn hash_unit_roughly_uniform() {
        let n = 10_000u64;
        let mut buckets = [0u32; 10];
        for i in 0..n {
            let u = hash_unit(combine(5, &[i]));
            buckets[(u * 10.0) as usize] += 1;
        }
        for (b, &count) in buckets.iter().enumerate() {
            let expected = n as f32 / 10.0;
            assert!(
                (count as f32 - expected).abs() < expected * 0.15,
                "bucket {b}: {count}"
            );
        }
    }
}
