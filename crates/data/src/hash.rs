//! Deterministic hash-based pseudo-random number generation.
//!
//! The planted ground-truth model needs a weight for *every possible*
//! feature value and cross-value combination — far too many to materialise.
//! Instead, weights are defined as pure functions of `(seed, identifiers)`
//! through SplitMix64, so any weight can be recomputed on demand and the
//! ground truth is fully deterministic.

/// One round of the SplitMix64 mixing function.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines a seed with up to four identifiers into one well-mixed u64.
pub fn combine(seed: u64, parts: &[u64]) -> u64 {
    let mut h = splitmix64(seed ^ 0xD1B5_4A32_D192_ED03);
    for &p in parts {
        h = splitmix64(h ^ p.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    h
}

/// Uniform value in `[0, 1)` derived from a hash.
#[inline]
pub fn hash_unit(h: u64) -> f32 {
    // Use the top 24 bits for an exactly-representable f32 in [0, 1).
    (h >> 40) as f32 / (1u64 << 24) as f32
}

/// Approximately standard-normal value derived from a hash.
///
/// Sum of four independent uniforms, centred and scaled (Irwin–Hall with
/// n = 4 has variance 1/3; scaling by sqrt(3) gives unit variance). The
/// tails are lighter than a true Gaussian, which is fine for planting
/// effect weights.
pub fn hash_normal(seed: u64, parts: &[u64]) -> f32 {
    let h = combine(seed, parts);
    let u1 = hash_unit(h);
    let u2 = hash_unit(splitmix64(h ^ 1));
    let u3 = hash_unit(splitmix64(h ^ 2));
    let u4 = hash_unit(splitmix64(h ^ 3));
    (u1 + u2 + u3 + u4 - 2.0) * (3.0f32).sqrt()
}

/// Deterministic open-addressing map from `u64` keys to **non-zero** `u32`
/// values.
///
/// This replaces `std::collections::HashMap` on the cross-vocabulary hot
/// path. `std`'s map is doubly unsuitable there: SipHash burns ~2ns per
/// probe on a workload that does hundreds of millions of them, and its
/// per-process random seed makes iteration order nondeterministic (which is
/// why the old code had to collect-and-sort behind a lint waiver). This
/// table uses a fixed, seed-free multiply-shift hash, so both lookups and
/// slot layout are pure functions of the inserted data — byte-identical
/// across runs, machines and thread counts.
///
/// The value 0 is reserved as the empty-slot marker. That restriction is
/// free for both users: pair-combination *counts* are at least 1, and
/// cross-value *ids* start at 1 because local id 0 is the OOV bucket — so
/// [`OpenTable::get`] returning 0 for an absent key is exactly the OOV
/// encoding.
#[derive(Debug, Clone)]
pub struct OpenTable {
    /// Slot keys; meaningful only where the matching value is non-zero.
    keys: Vec<u64>,
    /// Slot values; 0 marks an empty slot.
    vals: Vec<u32>,
    /// `64 - log2(capacity)`, the multiply-shift right-shift amount.
    shift: u32,
    len: usize,
}

/// Fibonacci multiplier (2^64 / φ), the classic multiply-shift constant.
const MULT: u64 = 0x9E37_79B9_7F4A_7C15;

impl OpenTable {
    /// Initial capacity (slots). Must be a power of two.
    const MIN_CAPACITY: usize = 16;

    /// Creates an empty table.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty table pre-sized so that up to `keys` distinct keys
    /// can be inserted without a growth rehash. `keys` is a hint: it bounds
    /// nothing, it only avoids rehashing below it.
    pub fn with_capacity(keys: usize) -> Self {
        // Smallest power of two holding `keys` under the 7/8 load cap.
        let mut cap = Self::MIN_CAPACITY;
        while cap * 7 < keys * 8 {
            cap *= 2;
        }
        Self {
            keys: vec![0; cap],
            vals: vec![0; cap],
            shift: 64 - cap.trailing_zeros(),
            len: 0,
        }
    }

    /// Number of occupied slots (distinct keys).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no key has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Home slot of a key: fixed multiply-shift into the top bits.
    #[inline]
    fn home(&self, key: u64) -> usize {
        (key.wrapping_mul(MULT) >> self.shift) as usize
    }

    /// Index of the slot holding `key`, or of the empty slot where it would
    /// be inserted (linear probing; the load factor cap guarantees one).
    #[inline]
    fn probe(&self, key: u64) -> usize {
        let mask = self.keys.len() - 1;
        let mut i = self.home(key);
        loop {
            // lint: allow(panic-free, reason="in bounds by construction: home() multiply-shifts into 0..len and the probe wraps with the power-of-two mask")
            if self.vals[i] == 0 || self.keys[i] == key {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    /// Value stored for `key`; 0 when absent.
    #[inline]
    pub fn get(&self, key: u64) -> u32 {
        let i = self.probe(key);
        // lint: allow(panic-free, reason="probe() returns an in-bounds slot (power-of-two mask)")
        if self.vals[i] == 0 {
            0
        } else {
            // lint: allow(panic-free, reason="probe() returns an in-bounds slot (power-of-two mask)")
            self.vals[i]
        }
    }

    /// Adds `delta` to the count stored for `key`, inserting it at `delta`
    /// when absent. `delta` must be non-zero.
    #[inline]
    pub fn add(&mut self, key: u64, delta: u32) {
        debug_assert!(delta != 0, "OpenTable: zero is the empty marker");
        let i = self.probe(key);
        if self.vals[i] == 0 {
            self.keys[i] = key;
            self.vals[i] = delta;
            self.len += 1;
            self.maybe_grow();
        } else {
            self.vals[i] += delta;
        }
    }

    /// Inserts `key -> val` (non-zero), overwriting any previous value.
    #[inline]
    pub fn insert(&mut self, key: u64, val: u32) {
        debug_assert!(val != 0, "OpenTable: zero is the empty marker");
        let i = self.probe(key);
        if self.vals[i] == 0 {
            self.keys[i] = key;
            self.vals[i] = val;
            self.len += 1;
            self.maybe_grow();
        } else {
            self.vals[i] = val;
        }
    }

    /// Doubles the capacity once occupancy passes 7/8 of the slots.
    fn maybe_grow(&mut self) {
        if self.len * 8 <= self.keys.len() * 7 {
            return;
        }
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0; new_cap]);
        self.shift = 64 - new_cap.trailing_zeros();
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if v != 0 {
                let i = self.probe(k);
                self.keys[i] = k;
                self.vals[i] = v;
            }
        }
    }

    /// All keys whose value is at least `min`, **sorted ascending** — the
    /// deterministic order downstream id assignment relies on.
    pub fn keys_with_at_least(&self, min: u32) -> Vec<u64> {
        let mut kept: Vec<u64> = self
            .keys
            .iter()
            .zip(&self.vals)
            .filter(|&(_, &v)| v >= min)
            .map(|(&k, _)| k)
            .collect();
        kept.sort_unstable();
        kept
    }
}

impl Default for OpenTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
        // Single-bit input changes should flip many output bits.
        let diff = (splitmix64(1) ^ splitmix64(0)).count_ones();
        assert!(diff > 16, "poor avalanche: {diff} bits");
    }

    #[test]
    fn combine_depends_on_all_parts() {
        let a = combine(7, &[1, 2, 3]);
        assert_ne!(a, combine(7, &[1, 2, 4]));
        assert_ne!(a, combine(7, &[2, 1, 3]));
        assert_ne!(a, combine(8, &[1, 2, 3]));
        assert_eq!(a, combine(7, &[1, 2, 3]));
    }

    #[test]
    fn hash_unit_in_range() {
        for i in 0..1000u64 {
            let u = hash_unit(splitmix64(i));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn hash_normal_moments() {
        let n = 20_000u64;
        let xs: Vec<f32> = (0..n).map(|i| hash_normal(99, &[i])).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn open_table_counts_and_lookups() {
        let mut t = OpenTable::new();
        assert!(t.is_empty());
        t.add(42, 1);
        t.add(42, 1);
        t.add(7, 3);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(42), 2);
        assert_eq!(t.get(7), 3);
        assert_eq!(t.get(8), 0, "absent key reads as 0");
    }

    #[test]
    fn open_table_insert_overwrites() {
        let mut t = OpenTable::new();
        t.insert(5, 10);
        t.insert(5, 11);
        assert_eq!(t.get(5), 11);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn open_table_grows_past_initial_capacity() {
        let mut t = OpenTable::new();
        // Far beyond MIN_CAPACITY, including keys that collide in the top
        // bits before growth.
        for k in 0..10_000u64 {
            t.add(k.wrapping_mul(0x10_0000_0001), 1);
            t.add(k.wrapping_mul(0x10_0000_0001), 2);
        }
        assert_eq!(t.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(t.get(k.wrapping_mul(0x10_0000_0001)), 3, "key {k}");
        }
    }

    #[test]
    fn open_table_matches_std_hashmap() {
        use std::collections::HashMap;
        let mut t = OpenTable::new();
        let mut reference: HashMap<u64, u32> = HashMap::new();
        // A deterministic pseudo-random workload with repeats.
        for i in 0..5_000u64 {
            let key = splitmix64(i) % 700;
            t.add(key, 1);
            *reference.entry(key).or_insert(0) += 1;
        }
        assert_eq!(t.len(), reference.len());
        for (&k, &v) in &reference {
            assert_eq!(t.get(k), v, "key {k}");
        }
        // Threshold + sort must agree with the sorted HashMap view.
        let mut expect: Vec<u64> = reference
            .iter()
            .filter(|&(_, &v)| v >= 8)
            .map(|(&k, _)| k)
            .collect();
        expect.sort_unstable();
        assert_eq!(t.keys_with_at_least(8), expect);
    }

    #[test]
    fn with_capacity_presizes_and_still_grows() {
        let mut t = OpenTable::with_capacity(1000);
        let cap = t.keys.len();
        assert!(cap * 7 >= 1000 * 8 / 8 * 8 && cap.is_power_of_two());
        for k in 0..1000u64 {
            t.add(splitmix64(k), 1);
        }
        assert_eq!(t.keys.len(), cap, "no rehash below the hint");
        for k in 1000..5000u64 {
            t.add(splitmix64(k), 1);
        }
        assert_eq!(t.len(), 5000, "growth past the hint still works");
        for k in 0..5000u64 {
            assert_eq!(t.get(splitmix64(k)), 1);
        }
    }

    #[test]
    fn open_table_keys_with_at_least_handles_zero_key() {
        // Key 0 is a valid raw cross value (both field values 0) and must
        // not be confused with the empty-slot marker.
        let mut t = OpenTable::new();
        t.add(0, 5);
        assert_eq!(t.get(0), 5);
        assert_eq!(t.keys_with_at_least(1), vec![0]);
        assert_eq!(t.keys_with_at_least(6), Vec::<u64>::new());
    }

    #[test]
    fn hash_unit_roughly_uniform() {
        let n = 10_000u64;
        let mut buckets = [0u32; 10];
        for i in 0..n {
            let u = hash_unit(combine(5, &[i]));
            buckets[(u * 10.0) as usize] += 1;
        }
        for (b, &count) in buckets.iter().enumerate() {
            let expected = n as f32 / 10.0;
            assert!(
                (count as f32 - expected).abs() < expected * 0.15,
                "bucket {b}: {count}"
            );
        }
    }
}
