//! Zipf-distributed categorical value sampling.
//!
//! Real CTR logs have heavily skewed value frequencies — a few head values
//! dominate, with a long tail of rare values. We model each field's value
//! distribution as Zipf with exponent `s`, sampled by inverse-CDF binary
//! search over a precomputed cumulative table.

use rand::Rng;

/// A Zipf(`s`) sampler over `{0, 1, ..., n-1}` where value `v` has
/// probability proportional to `1 / (v + 1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler. `s = 0` gives the uniform distribution.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: u32, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty support");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for v in 0..n {
            acc += 1.0 / ((v + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        // Guard against floating point: the last entry must be exactly 1.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Support size.
    pub fn support(&self) -> u32 {
        self.cdf.len() as u32
    }

    /// Draws one value.
    pub fn sample(&self, rng: &mut impl Rng) -> u32 {
        let u: f64 = rng.gen();
        self.quantile(u)
    }

    /// The value whose CDF bucket contains `u` in `[0, 1)`.
    pub fn quantile(&self, u: f64) -> u32 {
        // partition_point returns the first index with cdf[i] >= u... we
        // want the first index where cdf[i] > u would skip mass at exact
        // boundaries; use >= u which maps u=0 to value 0.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) as u32
    }

    /// Probability of value `v`.
    pub fn pmf(&self, v: u32) -> f64 {
        let v = v as usize;
        if v == 0 {
            self.cdf[0]
        } else {
            self.cdf[v] - self.cdf[v - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        for v in 0..4 {
            assert!((z.pmf(v) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.2);
        let total: f64 = (0..100).map(|v| z.pmf(v)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn head_dominates_with_high_s() {
        let z = Zipf::new(1000, 1.5);
        assert!(z.pmf(0) > 0.3);
        assert!(z.pmf(999) < 1e-4);
    }

    #[test]
    fn samples_follow_pmf() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let n = 100_000;
        let mut counts = [0u32; 10];
        for _ in 0..n {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for (v, &count) in counts.iter().enumerate() {
            let empirical = count as f64 / n as f64;
            let expected = z.pmf(v as u32);
            assert!(
                (empirical - expected).abs() < 0.01,
                "value {v}: {empirical} vs {expected}"
            );
        }
    }

    #[test]
    fn quantile_edges() {
        let z = Zipf::new(5, 1.0);
        assert_eq!(z.quantile(0.0), 0);
        assert_eq!(z.quantile(0.9999999), 4);
    }

    #[test]
    fn single_value_support() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
    }
}
