//! Mini-batch iteration with optional deterministic shuffling.

use crate::dataset::EncodedDataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::ops::Range;

/// One gathered mini-batch.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Row-major `[B * M]` global original-feature ids.
    pub fields: Vec<u32>,
    /// Row-major `[B * P]` global cross-feature ids (empty when the
    /// iterator was built with `with_cross(false)`).
    pub cross: Vec<u32>,
    /// Labels.
    pub labels: Vec<f32>,
    /// Number of fields per example.
    pub num_fields: usize,
    /// Number of pairs per example.
    pub num_pairs: usize,
}

impl Batch {
    /// Batch size.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the batch has no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Iterator producing gathered mini-batches over a row range.
pub struct BatchIter<'a> {
    data: &'a EncodedDataset,
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
    include_cross: bool,
}

impl<'a> BatchIter<'a> {
    /// Creates an iterator over `range`. With `shuffle_seed = Some(s)` the
    /// row order is a seeded permutation; with `None` it is sequential.
    pub fn new(
        data: &'a EncodedDataset,
        range: Range<usize>,
        batch_size: usize,
        shuffle_seed: Option<u64>,
    ) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(range.end <= data.len(), "range exceeds dataset");
        let mut order: Vec<usize> = range.collect();
        if let Some(seed) = shuffle_seed {
            let mut rng = StdRng::seed_from_u64(seed);
            order.shuffle(&mut rng);
        }
        Self {
            data,
            order,
            batch_size,
            cursor: 0,
            include_cross: true,
        }
    }

    /// Controls whether batches gather cross-feature ids (models that never
    /// memorize can skip the gather).
    pub fn with_cross(mut self, include: bool) -> Self {
        self.include_cross = include;
        self
    }

    /// Number of batches this iterator will yield.
    pub fn num_batches(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }
}

impl Iterator for BatchIter<'_> {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let rows = &self.order[self.cursor..end];
        self.cursor = end;
        let m = self.data.num_fields;
        let p = self.data.num_pairs;
        let mut fields = Vec::with_capacity(rows.len() * m);
        let mut cross = Vec::with_capacity(if self.include_cross {
            rows.len() * p
        } else {
            0
        });
        let mut labels = Vec::with_capacity(rows.len());
        for &r in rows {
            fields.extend_from_slice(self.data.row_fields(r));
            if self.include_cross {
                cross.extend_from_slice(self.data.row_cross(r));
            }
            labels.push(self.data.labels[r]);
        }
        Some(Batch {
            fields,
            cross,
            labels,
            num_fields: m,
            num_pairs: p,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBundle;
    use crate::generator::{PlantedKind, SyntheticSpec};

    fn bundle() -> DatasetBundle {
        let spec = SyntheticSpec {
            name: "batch-test".into(),
            seed: 1,
            cardinalities: vec![5, 5, 5],
            zipf_exponent: 0.5,
            planted: PlantedKind::assign(1, 1, 1, 3, 1),
            field_weight_std: 0.2,
            memorized_std: 0.8,
            factorized_std: 0.8,
            latent_dim: 2,
            nonlinear_std: 0.0,
            noise_std: 0.0,
            target_pos_ratio: 0.4,
        };
        DatasetBundle::from_spec(spec, 103, 1, 5)
    }

    #[test]
    fn covers_all_rows_exactly_once() {
        let b = bundle();
        let iter = BatchIter::new(&b.data, 0..b.len(), 10, Some(9));
        assert_eq!(iter.num_batches(), 11);
        let mut total = 0;
        for batch in iter {
            assert!(batch.len() <= 10);
            total += batch.len();
        }
        assert_eq!(total, 103);
    }

    #[test]
    fn sequential_order_preserved_without_shuffle() {
        let b = bundle();
        let mut iter = BatchIter::new(&b.data, 0..5, 3, None);
        let first = iter.next().unwrap();
        assert_eq!(&first.fields[0..3], b.data.row_fields(0));
        assert_eq!(&first.fields[3..6], b.data.row_fields(1));
    }

    #[test]
    fn shuffle_is_seed_deterministic() {
        let b = bundle();
        let a: Vec<f32> = BatchIter::new(&b.data, 0..50, 7, Some(42))
            .flat_map(|batch| batch.labels)
            .collect();
        let c: Vec<f32> = BatchIter::new(&b.data, 0..50, 7, Some(42))
            .flat_map(|batch| batch.labels)
            .collect();
        assert_eq!(a, c);
        let d: Vec<f32> = BatchIter::new(&b.data, 0..50, 7, Some(43))
            .flat_map(|batch| batch.labels)
            .collect();
        assert_ne!(a, d);
    }

    #[test]
    fn without_cross_skips_gather() {
        let b = bundle();
        let batch = BatchIter::new(&b.data, 0..10, 10, None)
            .with_cross(false)
            .next()
            .unwrap();
        assert!(batch.cross.is_empty());
        assert_eq!(batch.fields.len(), 10 * 3);
    }

    #[test]
    fn range_subset_only() {
        let b = bundle();
        let total: usize = BatchIter::new(&b.data, 20..40, 8, Some(1))
            .map(|x| x.len())
            .sum();
        assert_eq!(total, 20);
    }
}
