//! Mini-batch iteration with optional deterministic shuffling.

use crate::dataset::EncodedDataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::ops::Range;

/// One gathered mini-batch.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Row-major `[B * M]` global original-feature ids.
    pub fields: Vec<u32>,
    /// Row-major `[B * P]` global cross-feature ids (empty when the
    /// iterator was built with `with_cross(false)`).
    pub cross: Vec<u32>,
    /// Labels.
    pub labels: Vec<f32>,
    /// Number of fields per example.
    pub num_fields: usize,
    /// Number of pairs per example.
    pub num_pairs: usize,
}

impl Batch {
    /// An empty batch buffer, ready to be filled via [`Batch::fill`] (or
    /// [`BatchIter::next_into`]) without shape assumptions.
    pub fn empty() -> Self {
        Self {
            fields: Vec::new(),
            cross: Vec::new(),
            labels: Vec::new(),
            num_fields: 0,
            num_pairs: 0,
        }
    }

    /// Batch size.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the batch has no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Gathers the given dataset rows into this buffer, reusing its
    /// capacity. After the first few calls a recycled buffer has reached
    /// the steady-state batch size and filling makes no heap allocations.
    pub fn fill(&mut self, data: &EncodedDataset, rows: &[usize], include_cross: bool) {
        self.num_fields = data.num_fields;
        self.num_pairs = data.num_pairs;
        self.fields.clear();
        self.cross.clear();
        self.labels.clear();
        for &r in rows {
            self.fields.extend_from_slice(data.row_fields(r));
            if include_cross {
                self.cross.extend_from_slice(data.row_cross(r));
            }
            self.labels.push(data.labels[r]);
        }
    }

    /// Clears the buffer and fixes its per-example shape, ready for
    /// [`Batch::push_row`]. Capacity is retained, so a recycled buffer
    /// assembles request rows without heap allocations — the serving
    /// micro-batcher's steady-state path.
    pub fn begin(&mut self, num_fields: usize, num_pairs: usize) {
        self.fields.clear();
        self.cross.clear();
        self.labels.clear();
        self.num_fields = num_fields;
        self.num_pairs = num_pairs;
    }

    /// Appends one example. `cross` may be empty (a cross-free batch) or
    /// exactly `num_pairs` long; mixing the two within a batch panics on
    /// the next consumer shape check.
    pub fn push_row(&mut self, fields: &[u32], cross: &[u32], label: f32) {
        debug_assert_eq!(
            fields.len(),
            self.num_fields,
            "push_row: field count mismatch"
        );
        debug_assert!(
            cross.is_empty() || cross.len() == self.num_pairs,
            "push_row: cross width mismatch"
        );
        self.fields.extend_from_slice(fields);
        self.cross.extend_from_slice(cross);
        self.labels.push(label);
    }
}

/// Iterator producing gathered mini-batches over a row range.
pub struct BatchIter<'a> {
    data: &'a EncodedDataset,
    order: Vec<usize>,
    /// Per-batch spans into `order`, precomputed once at construction.
    spans: Vec<Range<usize>>,
    next_span: usize,
    include_cross: bool,
}

impl<'a> BatchIter<'a> {
    /// Creates an iterator over `range`. With `shuffle_seed = Some(s)` the
    /// row order is a seeded permutation; with `None` it is sequential.
    ///
    /// Batch *contents* are a pure function of `(shuffle_seed, range,
    /// batch_size)` — the prefetching stream in [`crate::prefetch`] relies
    /// on this to overlap assembly with compute without changing results.
    pub fn new(
        data: &'a EncodedDataset,
        range: Range<usize>,
        batch_size: usize,
        shuffle_seed: Option<u64>,
    ) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(range.end <= data.len(), "range exceeds dataset");
        let mut order: Vec<usize> = range.collect();
        if let Some(seed) = shuffle_seed {
            let mut rng = StdRng::seed_from_u64(seed);
            order.shuffle(&mut rng);
        }
        let spans = (0..order.len().div_ceil(batch_size))
            .map(|b| b * batch_size..((b + 1) * batch_size).min(order.len()))
            .collect();
        Self {
            data,
            order,
            spans,
            next_span: 0,
            include_cross: true,
        }
    }

    /// Controls whether batches gather cross-feature ids (models that never
    /// memorize can skip the gather).
    pub fn with_cross(mut self, include: bool) -> Self {
        self.include_cross = include;
        self
    }

    /// Number of batches this iterator will yield.
    pub fn num_batches(&self) -> usize {
        self.spans.len()
    }

    /// Gathers the next batch into `out`, reusing its capacity. Returns
    /// `false` (leaving `out` untouched) once the iterator is exhausted.
    ///
    /// This is the zero-allocation face of the iterator: recycled buffers
    /// fed back through it never reallocate in steady state.
    pub fn next_into(&mut self, out: &mut Batch) -> bool {
        let Some(span) = self.spans.get(self.next_span) else {
            return false;
        };
        self.next_span += 1;
        // lint: allow(hot-path-alloc, reason="Range<usize> clone is a stack copy, no heap allocation")
        out.fill(self.data, &self.order[span.clone()], self.include_cross);
        true
    }
}

impl Iterator for BatchIter<'_> {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        let mut batch = Batch::empty();
        self.next_into(&mut batch).then_some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBundle;
    use crate::generator::{PlantedKind, SyntheticSpec};

    fn bundle() -> DatasetBundle {
        let spec = SyntheticSpec {
            name: "batch-test".into(),
            seed: 1,
            cardinalities: vec![5, 5, 5],
            zipf_exponent: 0.5,
            planted: PlantedKind::assign(1, 1, 1, 3, 1),
            field_weight_std: 0.2,
            memorized_std: 0.8,
            factorized_std: 0.8,
            latent_dim: 2,
            nonlinear_std: 0.0,
            noise_std: 0.0,
            target_pos_ratio: 0.4,
        };
        DatasetBundle::from_spec(spec, 103, 1, 5)
    }

    #[test]
    fn covers_all_rows_exactly_once() {
        let b = bundle();
        let iter = BatchIter::new(&b.data, 0..b.len(), 10, Some(9));
        assert_eq!(iter.num_batches(), 11);
        let mut total = 0;
        for batch in iter {
            assert!(batch.len() <= 10);
            total += batch.len();
        }
        assert_eq!(total, 103);
    }

    #[test]
    fn sequential_order_preserved_without_shuffle() {
        let b = bundle();
        let mut iter = BatchIter::new(&b.data, 0..5, 3, None);
        let first = iter.next().unwrap();
        assert_eq!(&first.fields[0..3], b.data.row_fields(0));
        assert_eq!(&first.fields[3..6], b.data.row_fields(1));
    }

    #[test]
    fn shuffle_is_seed_deterministic() {
        let b = bundle();
        let a: Vec<f32> = BatchIter::new(&b.data, 0..50, 7, Some(42))
            .flat_map(|batch| batch.labels)
            .collect();
        let c: Vec<f32> = BatchIter::new(&b.data, 0..50, 7, Some(42))
            .flat_map(|batch| batch.labels)
            .collect();
        assert_eq!(a, c);
        let d: Vec<f32> = BatchIter::new(&b.data, 0..50, 7, Some(43))
            .flat_map(|batch| batch.labels)
            .collect();
        assert_ne!(a, d);
    }

    #[test]
    fn without_cross_skips_gather() {
        let b = bundle();
        let batch = BatchIter::new(&b.data, 0..10, 10, None)
            .with_cross(false)
            .next()
            .unwrap();
        assert!(batch.cross.is_empty());
        assert_eq!(batch.fields.len(), 10 * 3);
    }

    #[test]
    fn next_into_matches_iterator_and_reuses_capacity() {
        let b = bundle();
        let batches: Vec<Batch> = BatchIter::new(&b.data, 0..50, 7, Some(3)).collect();
        let mut iter = BatchIter::new(&b.data, 0..50, 7, Some(3));
        let mut buf = Batch::empty();
        let mut seen = 0usize;
        let mut caps = (0, 0, 0);
        while iter.next_into(&mut buf) {
            assert_eq!(buf.fields, batches[seen].fields);
            assert_eq!(buf.cross, batches[seen].cross);
            assert_eq!(buf.labels, batches[seen].labels);
            if seen == 1 {
                caps = (
                    buf.fields.capacity(),
                    buf.cross.capacity(),
                    buf.labels.capacity(),
                );
            } else if seen > 1 {
                // Steady state: refills never grow the recycled buffer.
                assert_eq!(buf.fields.capacity(), caps.0, "batch {seen}");
                assert_eq!(buf.cross.capacity(), caps.1, "batch {seen}");
                assert_eq!(buf.labels.capacity(), caps.2, "batch {seen}");
            }
            seen += 1;
        }
        assert_eq!(seen, batches.len());
        assert!(!iter.next_into(&mut buf), "exhausted iterator must refuse");
    }

    #[test]
    fn range_subset_only() {
        let b = bundle();
        let total: usize = BatchIter::new(&b.data, 20..40, 8, Some(1))
            .map(|x| x.len())
            .sum();
        assert_eq!(total, 20);
    }
}
