//! A bounded SPSC channel whose steady state never touches the heap.
//!
//! `std::sync::mpsc::sync_channel` is *almost* allocation-free — its ring
//! buffer is sized up front — but the first time a side actually has to
//! block, the runtime registers the parked thread in an internal waker
//! `Vec` that grows on the heap. When channels are created per epoch (the
//! prefetch pipeline) or per serve session (the micro-batch front door),
//! that lazy registration lands at whatever moment the two sides first
//! contend — including inside a zero-allocation measurement window
//! (`tests/alloc_steady_state.rs` caught exactly this, intermittently).
//!
//! This channel replaces parking with a `Mutex` + `Condvar` pair, whose
//! waits are futex-based on the platforms we run on and allocate nothing.
//! Everything is preallocated in [`bounded`]: a `VecDeque` ring of
//! `capacity` slots that can never grow, because senders block while it
//! is full. Semantics mirror the `std::sync::mpsc` subset the repo uses:
//! single producer, single consumer, `send`/`recv`/`recv_timeout`, and
//! hang-free disconnect in both directions when either handle drops.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;
// lint: allow(wall-clock, reason="recv_timeout measures elapsed real time by definition; never used on training paths")
use std::time::Instant;

/// Error returned by [`Sender::send`] when the receiver is gone; carries
/// the unsent value back like `std::sync::mpsc::SendError`.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and the
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with the channel still empty.
    Timeout,
    /// The channel is empty and the sender is gone.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    sender_alive: bool,
    receiver_alive: bool,
}

struct Inner<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    /// Signals the receiver that an item (or disconnect) is available.
    not_empty: Condvar,
    /// Signals the sender that a slot (or disconnect) is available.
    not_full: Condvar,
}

/// Producer half; dropping it disconnects the channel (the receiver still
/// drains whatever is queued).
pub struct Sender<T>(Arc<Inner<T>>);

/// Consumer half; dropping it disconnects the channel (senders error).
pub struct Receiver<T>(Arc<Inner<T>>);

/// Creates a bounded channel with `capacity` preallocated slots.
///
/// # Panics
/// Panics when `capacity` is zero — rendezvous channels are not needed
/// here and would reintroduce blocking on every send.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "bounded channel needs at least one slot");
    let inner = Arc::new(Inner {
        capacity,
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity),
            sender_alive: true,
            receiver_alive: true,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender(inner.clone()), Receiver(inner))
}

/// Locks channel state, tolerating poisoning: a panicked peer thread
/// cannot leave the queue of owned values inconsistent, and the panic
/// itself still propagates through `std::thread::scope`.
fn lock<T>(m: &Mutex<State<T>>) -> MutexGuard<'_, State<T>> {
    // lint: allow(no-blocking-cone, reason="declared queue hand-off: the channel mutex guards only the VecDeque push/pop, never user code, so the critical section is a few instructions")
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while the channel is full. Fails (returning
    /// the value) when the receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = lock(&self.0.state);
        loop {
            if !st.receiver_alive {
                return Err(SendError(value));
            }
            if st.queue.len() < self.0.capacity {
                st.queue.push_back(value);
                self.0.not_empty.notify_one();
                return Ok(());
            }
            // lint: allow(no-blocking-cone, reason="declared backpressure point: a bounded channel must park producers when full; flush_into only reaches this through the response Sender, which is sized to the in-flight batch and never fills")
            st = match self.0.not_full.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = lock(&self.0.state);
        st.sender_alive = false;
        self.0.not_empty.notify_all();
    }
}

impl<T> Receiver<T> {
    /// Receives the next value, blocking while the channel is empty.
    /// Fails only when the channel is empty *and* the sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = lock(&self.0.state);
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if !st.sender_alive {
                return Err(RecvError);
            }
            st = match self.0.not_empty.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// [`recv`](Self::recv) with an upper bound on the wait. Spurious
    /// condvar wakeups re-arm with the remaining time, so the total wait
    /// never exceeds `timeout` by more than scheduling noise.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        // lint: allow(wall-clock, reason="timeout bookkeeping for a blocking wait; not observable by any training computation")
        let start = Instant::now();
        let mut st = lock(&self.0.state);
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if !st.sender_alive {
                return Err(RecvTimeoutError::Disconnected);
            }
            let elapsed = start.elapsed();
            let Some(remaining) = timeout.checked_sub(elapsed) else {
                return Err(RecvTimeoutError::Timeout);
            };
            st = match self.0.not_empty.wait_timeout(st, remaining) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = lock(&self.0.state);
        st.receiver_alive = false;
        self.0.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_arrive_in_order() {
        let (tx, rx) = bounded::<u32>(2);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..100 {
                    tx.send(i).expect("receiver alive");
                }
            });
            for i in 0..100 {
                assert_eq!(rx.recv(), Ok(i));
            }
            assert_eq!(rx.recv(), Err(RecvError));
        });
    }

    #[test]
    fn dropping_the_receiver_fails_sends_with_the_value() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn dropping_the_sender_drains_then_disconnects() {
        let (tx, rx) = bounded::<u32>(4);
        tx.send(1).expect("send");
        tx.send(2).expect("send");
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out_on_an_empty_channel() {
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).expect("send");
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_blocks_until_a_slot_frees_up() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(0).expect("send");
        std::thread::scope(|s| {
            s.spawn(move || {
                // This send must block until the first recv below.
                tx.send(1).expect("receiver alive");
            });
            assert_eq!(rx.recv(), Ok(0));
            assert_eq!(rx.recv(), Ok(1));
        });
    }
}
