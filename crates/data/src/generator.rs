//! Planted-structure synthetic click-log generation.
//!
//! Each field pair is planted with one of the three interaction characters
//! the paper studies (Sec. I): **memorized** — an idiosyncratic effect per
//! cross-value combination that no low-rank factorization can express;
//! **factorized** — an inner product of per-field-value latent vectors; or
//! **none**. The ground-truth click probability is
//!
//! `p(click) = sigmoid(bias + Σ_f w_f(v_f) + Σ_planted pair effects + noise)`
//!
//! with every weight a deterministic hash of `(seed, identifiers)`, so the
//! ground truth needs no storage and is reproducible. The bias is calibrated
//! so that the marginal positive ratio matches the profile (Table II's
//! `pos ratio` column).

use crate::hash;
use crate::schema::{PairIndexer, Schema};
use crate::zipf::Zipf;
use optinter_tensor::numerics::sigmoid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The interaction character planted on a field pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlantedKind {
    /// Idiosyncratic per-cross-value effect (best memorized).
    Memorized,
    /// Low-rank latent inner-product effect (best factorized).
    Factorized,
    /// No direct interaction effect (best left naïve).
    None,
}

impl PlantedKind {
    /// Deterministically assigns kinds to `num_pairs` pairs with the given
    /// target counts, shuffled by `seed`.
    ///
    /// # Panics
    /// Panics if the counts do not sum to `num_pairs`.
    pub fn assign(
        num_memorized: usize,
        num_factorized: usize,
        num_none: usize,
        num_pairs: usize,
        seed: u64,
    ) -> Vec<PlantedKind> {
        assert_eq!(
            num_memorized + num_factorized + num_none,
            num_pairs,
            "planted counts must cover every pair"
        );
        let mut kinds = Vec::with_capacity(num_pairs);
        kinds.extend(std::iter::repeat_n(PlantedKind::Memorized, num_memorized));
        kinds.extend(std::iter::repeat_n(PlantedKind::Factorized, num_factorized));
        kinds.extend(std::iter::repeat_n(PlantedKind::None, num_none));
        // Fisher-Yates with hash-derived indices for determinism.
        for i in (1..kinds.len()).rev() {
            let j = (hash::combine(seed, &[0xA11, i as u64]) % (i as u64 + 1)) as usize;
            kinds.swap(i, j);
        }
        kinds
    }

    /// Assigns kinds by pair sparsity, mirroring real click logs: the
    /// `num_memorized` pairs with the *smallest* cross-cardinality get
    /// memorized effects (their combinations repeat often enough to
    /// memorize), the `num_factorized` pairs with the *largest*
    /// cross-cardinality get factorized effects (individual combinations
    /// are too rare to memorize, but per-value latents are learnable), and
    /// the middle gets none.
    ///
    /// # Panics
    /// Panics if the counts exceed the number of pairs.
    pub fn assign_by_cardinality(
        cardinalities: &[u32],
        num_memorized: usize,
        num_factorized: usize,
    ) -> Vec<PlantedKind> {
        let indexer = crate::schema::PairIndexer::new(cardinalities.len());
        let np = indexer.num_pairs();
        assert!(
            num_memorized + num_factorized <= np,
            "planted counts exceed pair count"
        );
        let mut order: Vec<usize> = (0..np).collect();
        let cross_card = |p: usize| {
            let (i, j) = indexer.pair_at(p);
            cardinalities[i] as u64 * cardinalities[j] as u64
        };
        order.sort_by_key(|&p| (cross_card(p), p));
        let mut kinds = vec![PlantedKind::None; np];
        for &p in order.iter().take(num_memorized) {
            kinds[p] = PlantedKind::Memorized;
        }
        for &p in order.iter().rev().take(num_factorized) {
            kinds[p] = PlantedKind::Factorized;
        }
        kinds
    }

    /// Short display tag.
    pub fn tag(&self) -> &'static str {
        match self {
            PlantedKind::Memorized => "mem",
            PlantedKind::Factorized => "fac",
            PlantedKind::None => "none",
        }
    }
}

/// Full specification of a synthetic dataset.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Human-readable name (e.g. `criteo_like`).
    pub name: String,
    /// Master seed; all ground-truth weights derive from it.
    pub seed: u64,
    /// Per-field raw cardinalities.
    pub cardinalities: Vec<u32>,
    /// Zipf exponent for value frequencies (0 = uniform).
    pub zipf_exponent: f64,
    /// Planted kind per pair, in [`PairIndexer`] flat order.
    pub planted: Vec<PlantedKind>,
    /// Std-dev of per-field-value main-effect weights.
    pub field_weight_std: f32,
    /// Std-dev of memorized pair effects.
    pub memorized_std: f32,
    /// Scale of factorized pair effects.
    pub factorized_std: f32,
    /// Rank of the planted latent vectors.
    pub latent_dim: usize,
    /// Scale of the planted *higher-order nonlinearity*: a `tanh` of a
    /// hashed one-dimensional projection of all field values. Shallow
    /// pairwise models (LR, Poly2, FM) cannot express it; deep classifiers
    /// can — this mirrors the higher-order structure of real click logs
    /// that gives deep CTR models their edge in the paper's Table V.
    pub nonlinear_std: f32,
    /// Std-dev of irreducible per-sample logit noise.
    pub noise_std: f32,
    /// Target marginal positive ratio.
    pub target_pos_ratio: f64,
}

impl SyntheticSpec {
    /// Schema implied by the cardinalities.
    pub fn schema(&self) -> Schema {
        Schema::new(self.cardinalities.clone())
    }

    /// Validates internal consistency.
    pub fn validate(&self) {
        let schema = self.schema();
        assert_eq!(
            self.planted.len(),
            schema.num_pairs(),
            "spec `{}`: planted kinds must cover every pair",
            self.name
        );
        assert!(self.latent_dim > 0, "latent_dim must be positive");
        assert!(
            (0.0..1.0).contains(&self.target_pos_ratio) && self.target_pos_ratio > 0.0,
            "target_pos_ratio must be in (0, 1)"
        );
    }
}

/// A generated raw dataset: rows of raw categorical values plus labels.
#[derive(Debug, Clone)]
pub struct RawDataset {
    /// Schema the rows follow.
    pub schema: Schema,
    /// Row-major values, `rows[n * M + f]` = raw value of field `f` in row `n`.
    pub rows: Vec<u32>,
    /// Binary click labels.
    pub labels: Vec<u8>,
    /// Ground-truth logits (diagnostics; an oracle upper bound for AUC).
    pub logits: Vec<f32>,
}

impl RawDataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Raw value of field `f` in row `n`.
    pub fn value(&self, n: usize, f: usize) -> u32 {
        self.rows[n * self.schema.num_fields() + f]
    }

    /// Empirical positive ratio.
    pub fn pos_ratio(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().map(|&y| y as u64).sum::<u64>() as f64 / self.labels.len() as f64
    }
}

/// Generates datasets from a [`SyntheticSpec`].
pub struct SyntheticGenerator {
    spec: SyntheticSpec,
    samplers: Vec<Zipf>,
    pairs: PairIndexer,
    bias: f32,
}

// Hash-domain tags keeping the weight families independent.
const TAG_FIELD: u64 = 1;
const TAG_MEM: u64 = 2;
const TAG_LATENT: u64 = 3;
const TAG_NONLIN: u64 = 4;

impl SyntheticGenerator {
    /// Builds a generator, calibrating the bias so the marginal positive
    /// ratio approximates `spec.target_pos_ratio`.
    pub fn new(spec: SyntheticSpec) -> Self {
        spec.validate();
        let samplers = spec
            .cardinalities
            .iter()
            .map(|&c| Zipf::new(c, spec.zipf_exponent))
            .collect();
        let pairs = PairIndexer::new(spec.cardinalities.len());
        let mut gen = Self {
            spec,
            samplers,
            pairs,
            bias: 0.0,
        };
        gen.bias = gen.calibrate_bias(4000);
        gen
    }

    /// The spec this generator realises.
    pub fn spec(&self) -> &SyntheticSpec {
        &self.spec
    }

    /// The calibrated intercept.
    pub fn bias(&self) -> f32 {
        self.bias
    }

    /// Main-effect weight of value `v` in field `f`.
    pub fn field_weight(&self, f: usize, v: u32) -> f32 {
        hash::hash_normal(self.spec.seed, &[TAG_FIELD, f as u64, v as u64])
            * self.spec.field_weight_std
    }

    /// Memorized pair effect for pair `p` at values `(vi, vj)`.
    pub fn memorized_effect(&self, p: usize, vi: u32, vj: u32) -> f32 {
        hash::hash_normal(self.spec.seed, &[TAG_MEM, p as u64, vi as u64, vj as u64])
            * self.spec.memorized_std
    }

    /// Latent vector of value `v` in field `f` (rank = `latent_dim`).
    pub fn latent(&self, f: usize, v: u32) -> Vec<f32> {
        (0..self.spec.latent_dim)
            .map(|d| hash::hash_normal(self.spec.seed, &[TAG_LATENT, f as u64, v as u64, d as u64]))
            .collect()
    }

    /// Factorized pair effect: scaled inner product of the field latents.
    pub fn factorized_effect(&self, i: usize, j: usize, vi: u32, vj: u32) -> f32 {
        let zi = self.latent(i, vi);
        let zj = self.latent(j, vj);
        let dot: f32 = zi.iter().zip(zj.iter()).map(|(a, b)| a * b).sum();
        dot / (self.spec.latent_dim as f32).sqrt() * self.spec.factorized_std
    }

    /// The higher-order nonlinear component: a product of three saturated
    /// hashed projections of all field values, scaled by `nonlinear_std`.
    ///
    /// A product of two sums is still second-order (expressible by pairwise
    /// cross weights); a product of *three* zero-mean factors has no
    /// main-effect or pairwise shadow at all, so shallow pairwise models
    /// (LR, Poly2, FM) cannot capture it while a deep classifier over the
    /// original embeddings can — this mirrors the higher-order structure of
    /// real click logs that gives deep CTR models their edge in Table V.
    pub fn nonlinear_effect(&self, values: &[u32]) -> f32 {
        if self.spec.nonlinear_std == 0.0 {
            return 0.0;
        }
        let m = (values.len() as f32).sqrt();
        let mut abc = [0.0f32; 3];
        for (f, &v) in values.iter().enumerate() {
            for (t, acc) in abc.iter_mut().enumerate() {
                *acc += hash::hash_normal(
                    self.spec.seed,
                    &[TAG_NONLIN, t as u64 + 1, f as u64, v as u64],
                );
            }
        }
        // lint: allow(float-reduction-order, reason="fixed-order slice of 3 per-field terms, iteration order is structural")
        abc.iter().map(|&x| (1.5 * x / m).tanh()).product::<f32>() * self.spec.nonlinear_std
    }

    /// Ground-truth logit of a row (excluding noise and bias).
    pub fn structural_logit(&self, row: &[f32], values: &[u32]) -> f32 {
        let _ = row;
        let mut logit = self.nonlinear_effect(values);
        for (f, &v) in values.iter().enumerate() {
            logit += self.field_weight(f, v);
        }
        for (p, (i, j)) in self.pairs.iter().enumerate() {
            match self.spec.planted[p] {
                PlantedKind::Memorized => {
                    logit += self.memorized_effect(p, values[i], values[j]);
                }
                PlantedKind::Factorized => {
                    logit += self.factorized_effect(i, j, values[i], values[j]);
                }
                PlantedKind::None => {}
            }
        }
        logit
    }

    fn calibrate_bias(&self, n_calib: usize) -> f32 {
        let mut rng = StdRng::seed_from_u64(self.spec.seed ^ 0xCA11B);
        let m = self.spec.cardinalities.len();
        let mut logits = Vec::with_capacity(n_calib);
        let mut values = vec![0u32; m];
        for _ in 0..n_calib {
            for (f, v) in values.iter_mut().enumerate() {
                *v = self.samplers[f].sample(&mut rng);
            }
            logits.push(self.structural_logit(&[], &values));
        }
        // Binary search the bias for the target mean click probability.
        let target = self.spec.target_pos_ratio as f32;
        let mut lo = -30.0f32;
        let mut hi = 30.0f32;
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            // lint: allow(float-reduction-order, reason="sequential slice iteration; order fixed by the Vec layout")
            let mean: f32 = logits.iter().map(|&z| sigmoid(z + mid)).sum::<f32>() / n_calib as f32;
            if mean < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Generates `n` i.i.d. samples using `sample_seed` for the data draw
    /// (value draws, label coin flips, noise). The ground-truth weights
    /// depend only on the spec seed, so different sample seeds give fresh
    /// datasets from the *same* underlying distribution.
    pub fn generate(&self, n: usize, sample_seed: u64) -> RawDataset {
        let m = self.spec.cardinalities.len();
        let mut rng = StdRng::seed_from_u64(sample_seed);
        let mut rows = Vec::with_capacity(n * m);
        let mut labels = Vec::with_capacity(n);
        let mut logits = Vec::with_capacity(n);
        let mut values = vec![0u32; m];
        for _ in 0..n {
            for (f, v) in values.iter_mut().enumerate() {
                *v = self.samplers[f].sample(&mut rng);
            }
            let mut logit = self.bias + self.structural_logit(&[], &values);
            if self.spec.noise_std > 0.0 {
                let (z, _) = optinter_tensor::init::box_muller(&mut rng);
                logit += z * self.spec.noise_std;
            }
            let p = sigmoid(logit);
            let y = u8::from(rng.gen::<f32>() < p);
            rows.extend_from_slice(&values);
            labels.push(y);
            logits.push(logit);
        }
        RawDataset {
            schema: self.spec.schema(),
            rows,
            labels,
            logits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SyntheticSpec {
        SyntheticSpec {
            name: "tiny".into(),
            seed: 7,
            cardinalities: vec![8, 8, 8, 8],
            zipf_exponent: 1.0,
            planted: PlantedKind::assign(2, 2, 2, 6, 7),
            field_weight_std: 0.3,
            memorized_std: 1.0,
            factorized_std: 1.0,
            latent_dim: 4,
            nonlinear_std: 0.5,
            noise_std: 0.1,
            target_pos_ratio: 0.25,
        }
    }

    #[test]
    fn assign_covers_and_is_deterministic() {
        let a = PlantedKind::assign(3, 4, 5, 12, 42);
        let b = PlantedKind::assign(3, 4, 5, 12, 42);
        assert_eq!(a, b);
        assert_eq!(
            a.iter().filter(|k| **k == PlantedKind::Memorized).count(),
            3
        );
        assert_eq!(
            a.iter().filter(|k| **k == PlantedKind::Factorized).count(),
            4
        );
        assert_eq!(a.iter().filter(|k| **k == PlantedKind::None).count(), 5);
    }

    #[test]
    #[should_panic(expected = "cover every pair")]
    fn assign_rejects_bad_counts() {
        PlantedKind::assign(1, 1, 1, 4, 0);
    }

    #[test]
    fn generation_is_reproducible() {
        let g = SyntheticGenerator::new(tiny_spec());
        let a = g.generate(100, 1);
        let b = g.generate(100, 1);
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.labels, b.labels);
        let c = g.generate(100, 2);
        assert_ne!(a.rows, c.rows);
    }

    #[test]
    fn pos_ratio_near_target() {
        let g = SyntheticGenerator::new(tiny_spec());
        let d = g.generate(20_000, 3);
        let ratio = d.pos_ratio();
        assert!(
            (ratio - 0.25).abs() < 0.04,
            "pos ratio {ratio} too far from target 0.25"
        );
    }

    #[test]
    fn weights_are_functions_of_identity() {
        let g = SyntheticGenerator::new(tiny_spec());
        assert_eq!(g.field_weight(0, 3), g.field_weight(0, 3));
        assert_ne!(g.field_weight(0, 3), g.field_weight(0, 4));
        assert_ne!(g.field_weight(0, 3), g.field_weight(1, 3));
        assert_eq!(g.memorized_effect(1, 2, 3), g.memorized_effect(1, 2, 3));
        assert_ne!(g.memorized_effect(1, 2, 3), g.memorized_effect(1, 3, 2));
    }

    #[test]
    fn factorized_effect_is_symmetric_in_rank() {
        let g = SyntheticGenerator::new(tiny_spec());
        // Same inputs -> same effect; latents shared per field.
        let e1 = g.factorized_effect(0, 1, 2, 5);
        let e2 = g.factorized_effect(0, 1, 2, 5);
        assert_eq!(e1, e2);
    }

    #[test]
    fn extreme_pos_ratio_calibrates() {
        let mut spec = tiny_spec();
        spec.target_pos_ratio = 0.01;
        let g = SyntheticGenerator::new(spec);
        let d = g.generate(30_000, 5);
        let ratio = d.pos_ratio();
        assert!((0.003..0.03).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn rows_respect_cardinalities() {
        let g = SyntheticGenerator::new(tiny_spec());
        let d = g.generate(500, 11);
        for n in 0..d.len() {
            for f in 0..4 {
                assert!(d.value(n, f) < 8);
            }
        }
    }
}
