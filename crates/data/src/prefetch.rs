//! Overlapped, zero-allocation batch streaming.
//!
//! [`BatchStream`] wraps [`BatchIter`] in a double-buffered producer /
//! consumer pipeline: a scoped background thread gathers batch `k + 1`
//! (field/cross row gathers plus the label copy) while the caller's
//! closure trains on batch `k`. Filled batches travel over a bounded
//! two-slot channel; spent buffers travel back over a free-list channel
//! and are refilled in place, so steady-state batch assembly performs
//! **zero heap allocations** — mirroring `optinter_nn::Workspace` on the
//! compute side.
//!
//! # Determinism
//!
//! Batch *contents* remain a pure function of `(shuffle_seed, range,
//! batch_size)`: the producer runs the exact same [`BatchIter::next_into`]
//! the serial path runs, in the same order, and the bounded channel
//! preserves that order end to end. Prefetching changes only *when* a
//! batch is assembled relative to the compute on the previous one — so
//! training with the stream is bit-identical with prefetch on or off, at
//! any thread count (`tests/determinism.rs` proves this).
//!
//! # Buffer ownership protocol
//!
//! The producer owns [`NUM_BUFFERS`] `Batch` buffers. At any instant each
//! buffer is in exactly one place: being filled by the producer, queued in
//! the bounded channel (capacity [`QUEUE_SLOTS`]), lent to the consumer
//! closure, or in transit back through the free-list channel. The producer
//! blocks when the queue is full (compute-bound training) or when no free
//! buffer is available yet; the consumer blocks in `recv` when the queue
//! is empty (input-bound training). Either side dropping its channel ends
//! the other cleanly, including on panic — `std::thread::scope` then
//! propagates the panic to the caller.

use crate::batch::{Batch, BatchIter};
use crate::channel;
use crate::dataset::EncodedDataset;
use std::ops::Range;

/// Recycled batch buffers owned by the pipeline. Two can sit in the full
/// queue while one is being filled and one is being consumed.
const NUM_BUFFERS: usize = 4;

/// Bound of the filled-batch channel: the producer runs at most two
/// batches ahead of the consumer.
const QUEUE_SLOTS: usize = 2;

/// A configurable stream of mini-batches, consumed through a callback.
///
/// This is the input side of every training loop: construction mirrors
/// [`BatchIter::new`], and [`BatchStream::for_each`] drives the loop body.
/// With prefetching enabled (the default) batch assembly overlaps the
/// loop body on a background thread; disabled, batches are assembled
/// inline into a single recycled buffer. Both paths yield bit-identical
/// batches in the same order.
#[must_use = "a BatchStream does nothing until `for_each` is called"]
pub struct BatchStream<'a> {
    data: &'a EncodedDataset,
    range: Range<usize>,
    batch_size: usize,
    shuffle_seed: Option<u64>,
    include_cross: bool,
    prefetch: bool,
}

impl<'a> BatchStream<'a> {
    /// Creates a stream over `range` with the same semantics as
    /// [`BatchIter::new`]. Prefetching and the cross gather start enabled.
    pub fn new(
        data: &'a EncodedDataset,
        range: Range<usize>,
        batch_size: usize,
        shuffle_seed: Option<u64>,
    ) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(range.end <= data.len(), "range exceeds dataset");
        Self {
            data,
            range,
            batch_size,
            shuffle_seed,
            include_cross: true,
            prefetch: true,
        }
    }

    /// Controls whether batches gather cross-feature ids (models that never
    /// memorize can skip the gather).
    pub fn with_cross(mut self, include: bool) -> Self {
        self.include_cross = include;
        self
    }

    /// Enables or disables the background prefetch thread. Results are
    /// bit-identical either way; `false` keeps everything on the caller
    /// thread (useful for A/B timing and single-threaded debugging).
    pub fn prefetch(mut self, enabled: bool) -> Self {
        self.prefetch = enabled;
        self
    }

    /// Number of batches the stream will yield.
    pub fn num_batches(&self) -> usize {
        self.range.len().div_ceil(self.batch_size)
    }

    /// Runs `f` over every batch in order.
    ///
    /// The borrow handed to `f` lives only for the call — the buffer
    /// behind it is recycled for a later batch as soon as `f` returns.
    pub fn for_each<F: FnMut(&Batch)>(self, mut f: F) {
        let mut iter = BatchIter::new(self.data, self.range, self.batch_size, self.shuffle_seed)
            .with_cross(self.include_cross);
        if !self.prefetch {
            // Inline path: one recycled buffer, zero steady-state allocs.
            let mut buf = Batch::empty();
            while iter.next_into(&mut buf) {
                f(&buf);
            }
            return;
        }
        std::thread::scope(|scope| {
            // `optinter_data::channel` rather than `std::sync::mpsc`: the
            // std channel lazily registers parked threads in a growable
            // waker list, so the first blocking recv of an epoch could
            // allocate mid-measurement. Ours preallocates everything.
            let (full_tx, full_rx) = channel::bounded::<Batch>(QUEUE_SLOTS);
            // The free-list is bounded too, at capacity NUM_BUFFERS, so a
            // send can never block — there are only NUM_BUFFERS buffers in
            // existence.
            let (free_tx, free_rx) = channel::bounded::<Batch>(NUM_BUFFERS);
            scope.spawn(move || {
                let mut fresh: Vec<Batch> = (0..NUM_BUFFERS).map(|_| Batch::empty()).collect();
                loop {
                    let mut buf = match fresh.pop() {
                        Some(b) => b,
                        // All buffers are in flight: wait for a spent one.
                        // A recv error means the consumer is gone (done or
                        // panicked); either way there is nothing left to do.
                        None => match free_rx.recv() {
                            Ok(b) => b,
                            Err(_) => return,
                        },
                    };
                    if !iter.next_into(&mut buf) {
                        // Exhausted: dropping `full_tx` tells the consumer
                        // the stream is complete.
                        return;
                    }
                    if full_tx.send(buf).is_err() {
                        return;
                    }
                }
            });
            // The consumer runs on the caller thread; `recv` returns an
            // error exactly when the producer has finished and the queue
            // has drained.
            while let Ok(batch) = full_rx.recv() {
                f(&batch);
                // The producer may already have exited; losing the buffer
                // then is fine.
                let _ = free_tx.send(batch);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBundle;
    use crate::generator::{PlantedKind, SyntheticSpec};

    fn bundle(n: usize) -> DatasetBundle {
        let spec = SyntheticSpec {
            name: "prefetch-test".into(),
            seed: 11,
            cardinalities: vec![6, 5, 4],
            zipf_exponent: 0.7,
            planted: PlantedKind::assign(1, 1, 1, 3, 2),
            field_weight_std: 0.2,
            memorized_std: 0.8,
            factorized_std: 0.8,
            latent_dim: 2,
            nonlinear_std: 0.0,
            noise_std: 0.0,
            target_pos_ratio: 0.4,
        };
        DatasetBundle::from_spec(spec, n, 1, 5)
    }

    /// Flattens a stream into (fields, cross, labels, batch_lens).
    fn collect(
        b: &DatasetBundle,
        batch_size: usize,
        seed: Option<u64>,
        prefetch: bool,
        cross: bool,
    ) -> (Vec<u32>, Vec<u32>, Vec<f32>, Vec<usize>) {
        let mut out = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        BatchStream::new(&b.data, 0..b.len(), batch_size, seed)
            .with_cross(cross)
            .prefetch(prefetch)
            .for_each(|batch| {
                out.0.extend_from_slice(&batch.fields);
                out.1.extend_from_slice(&batch.cross);
                out.2.extend_from_slice(&batch.labels);
                out.3.push(batch.len());
            });
        out
    }

    #[test]
    fn prefetch_on_and_off_yield_identical_streams() {
        let b = bundle(333);
        for &seed in &[None, Some(9u64)] {
            for batch_size in [1usize, 7, 64, 333, 500] {
                let on = collect(&b, batch_size, seed, true, true);
                let off = collect(&b, batch_size, seed, false, true);
                assert_eq!(on, off, "seed={seed:?} batch_size={batch_size}");
            }
        }
    }

    #[test]
    fn stream_matches_batch_iter_exactly() {
        let b = bundle(200);
        let mut expect = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for batch in BatchIter::new(&b.data, 0..200, 13, Some(4)) {
            expect.0.extend_from_slice(&batch.fields);
            expect.1.extend_from_slice(&batch.cross);
            expect.2.extend_from_slice(&batch.labels);
            expect.3.push(batch.len());
        }
        assert_eq!(collect(&b, 13, Some(4), true, true), expect);
    }

    #[test]
    fn covers_all_rows_exactly_once() {
        let b = bundle(257);
        let stream = BatchStream::new(&b.data, 0..257, 10, Some(1));
        assert_eq!(stream.num_batches(), 26);
        let mut rows = 0usize;
        stream.for_each(|batch| rows += batch.len());
        assert_eq!(rows, 257);
    }

    #[test]
    fn without_cross_skips_gather() {
        let b = bundle(64);
        let (fields, cross, labels, _) = collect(&b, 16, None, true, false);
        assert!(cross.is_empty());
        assert_eq!(fields.len(), 64 * 3);
        assert_eq!(labels.len(), 64);
    }

    #[test]
    fn consumer_panic_propagates_and_does_not_hang() {
        let b = bundle(300);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut seen = 0usize;
            BatchStream::new(&b.data, 0..300, 8, None).for_each(|_| {
                seen += 1;
                if seen == 3 {
                    panic!("consumer bail-out");
                }
            });
        }));
        assert!(result.is_err(), "panic must reach the caller");
    }

    #[test]
    fn empty_range_yields_no_batches() {
        let b = bundle(50);
        let mut calls = 0usize;
        BatchStream::new(&b.data, 10..10, 4, None).for_each(|_| calls += 1);
        assert_eq!(calls, 0);
    }
}
