//! Encoded datasets: vocabulary-mapped features, cross features, labels and
//! train/validation/test splits.

use crate::cross::CrossVocab;
use crate::generator::{PlantedKind, RawDataset, SyntheticGenerator, SyntheticSpec};
use crate::vocab::Vocabulary;
use optinter_tensor::Pool;
use std::ops::Range;

/// Train / validation / test row ranges.
///
/// Rows are generated i.i.d., so contiguous ranges are valid random splits.
/// The paper uses 80% train+validation / 20% test; we default to 70/10/20.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Training rows.
    pub train: Range<usize>,
    /// Validation rows (used by bi-level search and early diagnostics).
    pub val: Range<usize>,
    /// Held-out test rows.
    pub test: Range<usize>,
}

impl Split {
    /// Builds a split from fractions. Fractions must sum to at most 1.
    pub fn fractions(n: usize, train: f64, val: f64) -> Self {
        assert!(
            train > 0.0 && val >= 0.0 && train + val < 1.0,
            "invalid split fractions"
        );
        let n_train = (n as f64 * train).round() as usize;
        let n_val = (n as f64 * val).round() as usize;
        assert!(n_train + n_val < n, "split leaves no test rows");
        Self {
            train: 0..n_train,
            val: n_train..n_train + n_val,
            test: n_train + n_val..n,
        }
    }
}

/// A fully-encoded dataset ready for mini-batch training.
#[derive(Debug, Clone)]
pub struct EncodedDataset {
    /// Number of original fields `M`.
    pub num_fields: usize,
    /// Number of second-order pairs `M(M-1)/2`.
    pub num_pairs: usize,
    /// Global original-feature vocabulary size (rows of `E^o`).
    pub orig_vocab: u32,
    /// Global cross-feature vocabulary size (rows of `E^m`).
    pub cross_vocab: u32,
    /// Row-major `[N * M]` global original-feature ids.
    pub fields: Vec<u32>,
    /// Row-major `[N * P]` global cross-feature ids.
    pub cross: Vec<u32>,
    /// Labels in `{0.0, 1.0}`.
    pub labels: Vec<f32>,
    /// Per-field vocabulary sizes (OOV included).
    pub field_vocab_sizes: Vec<u32>,
    /// Per-pair cross vocabulary sizes (OOV included).
    pub pair_vocab_sizes: Vec<u32>,
    /// Global offset of each field in the original id space.
    pub field_offsets: Vec<u32>,
    /// Global offset of each pair in the cross id space.
    pub pair_offsets: Vec<u32>,
}

impl EncodedDataset {
    /// Encodes a raw dataset. Vocabularies are built on `vocab_rows`
    /// (normally the training range) and applied everywhere.
    ///
    /// Serial convenience wrapper around [`EncodedDataset::encode_with_pool`].
    pub fn encode(raw: &RawDataset, vocab_rows: Range<usize>, min_count: u32) -> Self {
        Self::encode_with_pool(raw, vocab_rows, min_count, &Pool::serial())
    }

    /// Encodes a raw dataset with the cross-vocabulary build and the cross
    /// encode sharded across `pool`. The result is byte-identical to the
    /// serial [`EncodedDataset::encode`] for any thread count (owner
    /// computes: every pair vocabulary and every output row is produced by
    /// exactly one worker).
    pub fn encode_with_pool(
        raw: &RawDataset,
        vocab_rows: Range<usize>,
        min_count: u32,
        pool: &Pool,
    ) -> Self {
        let m = raw.schema.num_fields();
        let train_slice = &raw.rows[vocab_rows.start * m..vocab_rows.end * m];
        let vocab = Vocabulary::build(&raw.schema, train_slice, min_count);
        let cross_vocab = CrossVocab::build_with_pool(&raw.schema, train_slice, min_count, pool);
        let fields = vocab.encode_rows(&raw.rows);
        let cross = cross_vocab.encode_rows_with_pool(&raw.schema, &raw.rows, pool);
        let labels = raw.labels.iter().map(|&y| y as f32).collect();
        Self {
            num_fields: m,
            num_pairs: raw.schema.num_pairs(),
            orig_vocab: vocab.total(),
            cross_vocab: cross_vocab.total(),
            fields,
            cross,
            labels,
            field_vocab_sizes: vocab.sizes(),
            pair_vocab_sizes: cross_vocab.sizes(),
            field_offsets: (0..m).map(|f| vocab.offset(f)).collect(),
            pair_offsets: (0..raw.schema.num_pairs())
                .map(|p| cross_vocab.offset(p))
                .collect(),
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Original-feature ids of row `n`.
    pub fn row_fields(&self, n: usize) -> &[u32] {
        &self.fields[n * self.num_fields..(n + 1) * self.num_fields]
    }

    /// Cross-feature ids of row `n`.
    pub fn row_cross(&self, n: usize) -> &[u32] {
        &self.cross[n * self.num_pairs..(n + 1) * self.num_pairs]
    }

    /// Positive ratio over a row range.
    pub fn pos_ratio(&self, range: Range<usize>) -> f64 {
        let s: f64 = self.labels[range.clone()].iter().map(|&y| y as f64).sum();
        s / range.len().max(1) as f64
    }

    /// Local (within-pair) cross id of row `n`, pair `p`: 0 means OOV.
    pub fn local_cross(&self, n: usize, p: usize) -> u32 {
        self.row_cross(n)[p] - self.pair_offsets[p]
    }
}

/// Everything an experiment needs: spec, encoded data, split, and the
/// planted ground truth for verification.
#[derive(Debug, Clone)]
pub struct DatasetBundle {
    /// The generating spec.
    pub spec: SyntheticSpec,
    /// Encoded dataset.
    pub data: EncodedDataset,
    /// Row split.
    pub split: Split,
    /// Planted interaction kind per pair (flat order).
    pub planted: Vec<PlantedKind>,
    /// Ground-truth logits (oracle diagnostics).
    pub oracle_logits: Vec<f32>,
}

impl DatasetBundle {
    /// Generates, splits and encodes a dataset from a spec.
    pub fn from_spec(spec: SyntheticSpec, n: usize, min_count: u32, sample_seed: u64) -> Self {
        let generator = SyntheticGenerator::new(spec);
        let raw = generator.generate(n, sample_seed);
        let split = Split::fractions(n, 0.7, 0.1);
        let data = EncodedDataset::encode(&raw, split.train.clone(), min_count);
        let spec = generator.spec().clone();
        let planted = spec.planted.clone();
        Self {
            spec,
            data,
            split,
            planted,
            oracle_logits: raw.logits,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::PlantedKind;

    fn tiny_bundle(n: usize) -> DatasetBundle {
        let spec = SyntheticSpec {
            name: "tiny".into(),
            seed: 3,
            cardinalities: vec![6, 6, 6],
            zipf_exponent: 0.8,
            planted: PlantedKind::assign(1, 1, 1, 3, 3),
            field_weight_std: 0.3,
            memorized_std: 1.0,
            factorized_std: 1.0,
            latent_dim: 3,
            nonlinear_std: 0.0,
            noise_std: 0.1,
            target_pos_ratio: 0.3,
        };
        DatasetBundle::from_spec(spec, n, 1, 17)
    }

    #[test]
    fn split_fractions() {
        let s = Split::fractions(100, 0.7, 0.1);
        assert_eq!(s.train, 0..70);
        assert_eq!(s.val, 70..80);
        assert_eq!(s.test, 80..100);
    }

    #[test]
    #[should_panic(expected = "no test rows")]
    fn split_requires_test_rows() {
        Split::fractions(10, 0.9, 0.09999999);
    }

    #[test]
    fn encode_shapes() {
        let b = tiny_bundle(200);
        assert_eq!(b.data.num_fields, 3);
        assert_eq!(b.data.num_pairs, 3);
        assert_eq!(b.data.fields.len(), 200 * 3);
        assert_eq!(b.data.cross.len(), 200 * 3);
        assert_eq!(b.data.labels.len(), 200);
        assert_eq!(b.oracle_logits.len(), 200);
    }

    #[test]
    fn global_ids_in_range() {
        let b = tiny_bundle(300);
        for &id in &b.data.fields {
            assert!(id < b.data.orig_vocab);
        }
        for &id in &b.data.cross {
            assert!(id < b.data.cross_vocab);
        }
    }

    #[test]
    fn field_ids_fall_in_their_field_bucket() {
        let b = tiny_bundle(100);
        for n in 0..b.len() {
            let row = b.data.row_fields(n);
            for (f, &id) in row.iter().enumerate() {
                let lo = b.data.field_offsets[f];
                let hi = lo + b.data.field_vocab_sizes[f];
                assert!((lo..hi).contains(&id), "row {n} field {f}: {id}");
            }
        }
    }

    #[test]
    fn local_cross_zero_is_oov() {
        let b = tiny_bundle(100);
        for n in 0..b.len() {
            for p in 0..3 {
                let local = b.data.local_cross(n, p);
                assert!(local < b.data.pair_vocab_sizes[p]);
            }
        }
    }

    #[test]
    fn vocab_built_from_train_only() {
        // A value appearing only in the test range must encode as OOV.
        let b = tiny_bundle(50);
        // All ids valid is already checked; here we check determinism.
        let b2 = tiny_bundle(50);
        assert_eq!(b.data.fields, b2.data.fields);
        assert_eq!(b.data.cross, b2.data.cross);
    }

    #[test]
    fn labels_are_binary() {
        let b = tiny_bundle(150);
        assert!(b.data.labels.iter().all(|&y| y == 0.0 || y == 1.0));
    }
}
