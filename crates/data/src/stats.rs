//! Dataset statistics — the Table II analogue.

use crate::dataset::DatasetBundle;

/// Summary statistics of an encoded dataset, mirroring the columns of the
/// paper's Table II: sample count, categorical field count, cross-feature
/// count, distinct original values, distinct cross values, positive ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of samples.
    pub samples: usize,
    /// Number of categorical fields (`#cate`).
    pub num_categorical: usize,
    /// Number of cross-product transformed features (`#cross`).
    pub num_cross: usize,
    /// Total original vocabulary size (`#orig value`).
    pub orig_values: u64,
    /// Total cross vocabulary size (`#cross value`).
    pub cross_values: u64,
    /// Marginal positive ratio (`pos ratio`).
    pub pos_ratio: f64,
}

impl DatasetStats {
    /// Computes statistics for a bundle.
    pub fn compute(bundle: &DatasetBundle) -> Self {
        Self {
            name: bundle.spec.name.clone(),
            samples: bundle.len(),
            num_categorical: bundle.data.num_fields,
            num_cross: bundle.data.num_pairs,
            orig_values: bundle.data.orig_vocab as u64,
            cross_values: bundle.data.cross_vocab as u64,
            pos_ratio: bundle.data.pos_ratio(0..bundle.len()),
        }
    }

    /// Markdown table header matching Table II's columns.
    pub fn header() -> String {
        format!(
            "| {:<14} | {:>9} | {:>5} | {:>6} | {:>11} | {:>12} | {:>9} |",
            "Dataset", "#samples", "#cate", "#cross", "#orig value", "#cross value", "pos ratio"
        )
    }

    /// Markdown separator row.
    pub fn separator() -> String {
        format!(
            "|{}|{}|{}|{}|{}|{}|{}|",
            "-".repeat(16),
            "-".repeat(11),
            "-".repeat(7),
            "-".repeat(8),
            "-".repeat(13),
            "-".repeat(14),
            "-".repeat(11)
        )
    }

    /// One markdown table row.
    pub fn row(&self) -> String {
        format!(
            "| {:<14} | {:>9} | {:>5} | {:>6} | {:>11} | {:>12} | {:>9.4} |",
            self.name,
            self.samples,
            self.num_categorical,
            self.num_cross,
            self.orig_values,
            self.cross_values,
            self.pos_ratio
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{PlantedKind, SyntheticSpec};

    #[test]
    fn stats_match_bundle() {
        let spec = SyntheticSpec {
            name: "stats-test".into(),
            seed: 2,
            cardinalities: vec![10, 10, 10, 10],
            zipf_exponent: 1.0,
            planted: PlantedKind::assign(2, 2, 2, 6, 2),
            field_weight_std: 0.3,
            memorized_std: 1.0,
            factorized_std: 1.0,
            latent_dim: 2,
            nonlinear_std: 0.0,
            noise_std: 0.1,
            target_pos_ratio: 0.3,
        };
        let bundle = DatasetBundle::from_spec(spec, 500, 1, 9);
        let stats = DatasetStats::compute(&bundle);
        assert_eq!(stats.samples, 500);
        assert_eq!(stats.num_categorical, 4);
        assert_eq!(stats.num_cross, 6);
        assert_eq!(stats.orig_values, bundle.data.orig_vocab as u64);
        assert_eq!(stats.cross_values, bundle.data.cross_vocab as u64);
        assert!(
            stats.cross_values > stats.orig_values,
            "cross vocab should dominate"
        );
        assert!((0.1..0.6).contains(&stats.pos_ratio));
    }

    #[test]
    fn rows_render() {
        let header = DatasetStats::header();
        assert!(header.contains("#cross value"));
        assert!(DatasetStats::separator().starts_with('|'));
    }
}
