//! Property-based tests on the data substrate: vocabulary encoding, the
//! cross-product transform, batching, and generation invariants.

#![cfg(test)]

use crate::batch::BatchIter;
use crate::cross::CrossVocab;
use crate::dataset::{DatasetBundle, Split};
use crate::generator::{PlantedKind, SyntheticSpec};
use crate::schema::Schema;
use crate::vocab::Vocabulary;
use crate::zipf::Zipf;
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = SyntheticSpec> {
    (2usize..5, 3u32..12, 0.0f64..1.5, 0.05f64..0.5, 0u64..50).prop_map(
        |(m, card, zipf, pos, seed)| {
            let pairs = m * (m - 1) / 2;
            let mem = pairs / 3;
            let fac = pairs / 3;
            SyntheticSpec {
                name: "prop".into(),
                seed,
                cardinalities: vec![card; m],
                zipf_exponent: zipf,
                planted: PlantedKind::assign(mem, fac, pairs - mem - fac, pairs, seed),
                field_weight_std: 0.3,
                memorized_std: 0.8,
                factorized_std: 0.8,
                latent_dim: 2,
                nonlinear_std: 0.0,
                noise_std: 0.1,
                target_pos_ratio: pos,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn encoded_ids_always_in_vocab_range(spec in arb_spec()) {
        let bundle = DatasetBundle::from_spec(spec, 300, 1, 7);
        for &id in &bundle.data.fields {
            prop_assert!(id < bundle.data.orig_vocab);
        }
        for &id in &bundle.data.cross {
            prop_assert!(id < bundle.data.cross_vocab);
        }
    }

    #[test]
    fn vocab_offsets_partition_the_id_space(spec in arb_spec()) {
        let bundle = DatasetBundle::from_spec(spec, 200, 1, 8);
        let d = &bundle.data;
        let mut expected = 0u32;
        for (f, &offset) in d.field_offsets.iter().enumerate() {
            prop_assert_eq!(offset, expected);
            expected += d.field_vocab_sizes[f];
        }
        prop_assert_eq!(expected, d.orig_vocab);
        let mut expected = 0u32;
        for (p, &offset) in d.pair_offsets.iter().enumerate() {
            prop_assert_eq!(offset, expected);
            expected += d.pair_vocab_sizes[p];
        }
        prop_assert_eq!(expected, d.cross_vocab);
    }

    #[test]
    fn higher_min_count_never_grows_vocab(
        rows in proptest::collection::vec(0u32..6, 30..120),
    ) {
        let n = rows.len() / 2 * 2;
        let rows = &rows[..n];
        let schema = Schema::new(vec![6, 6]);
        let v1 = Vocabulary::build(&schema, rows, 1);
        let v2 = Vocabulary::build(&schema, rows, 3);
        prop_assert!(v2.total() <= v1.total());
        let c1 = CrossVocab::build(&schema, rows, 1);
        let c2 = CrossVocab::build(&schema, rows, 3);
        prop_assert!(c2.total() <= c1.total());
    }

    #[test]
    fn open_addressing_cross_vocab_matches_hashmap_reference(
        rows in proptest::collection::vec(0u32..9, 40..160),
        min_count in 1u32..4,
    ) {
        use std::collections::HashMap;
        let m = 3usize;
        let n = rows.len() / m;
        let rows = &rows[..n * m];
        let schema = Schema::new(vec![9, 9, 9]);
        let cv = CrossVocab::build(&schema, rows, min_count);
        // Reference: the historical per-pair SipHash HashMap build with
        // sorted id assignment.
        let indexer = schema.pairs();
        let mut counts: Vec<HashMap<u64, u32>> = vec![HashMap::new(); indexer.num_pairs()];
        for r in 0..n {
            let row = &rows[r * m..(r + 1) * m];
            for (p, (i, j)) in indexer.iter().enumerate() {
                *counts[p]
                    .entry(crate::cross::raw_cross(row[i], row[j]))
                    .or_insert(0) += 1;
            }
        }
        let mut expected_encoded = vec![0u32; n * indexer.num_pairs()];
        let mut offset = 0u32;
        for (p, c) in counts.iter().enumerate() {
            let mut kept: Vec<u64> = c
                .iter()
                .filter(|&(_, &cnt)| cnt >= min_count)
                .map(|(&v, _)| v)
                .collect();
            kept.sort_unstable();
            let ids: HashMap<u64, u32> = kept
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, i as u32 + 1))
                .collect();
            prop_assert_eq!(cv.sizes()[p], kept.len() as u32 + 1, "pair {} size", p);
            prop_assert_eq!(cv.offset(p), offset, "pair {} offset", p);
            let (fi, fj) = indexer.pair_at(p);
            for r in 0..n {
                let row = &rows[r * m..(r + 1) * m];
                let raw = crate::cross::raw_cross(row[fi], row[fj]);
                expected_encoded[r * indexer.num_pairs() + p] =
                    offset + ids.get(&raw).copied().unwrap_or(0);
            }
            offset += kept.len() as u32 + 1;
        }
        prop_assert_eq!(cv.encode_rows(&schema, rows), expected_encoded);
    }

    #[test]
    fn prefetched_stream_is_identical_to_serial_stream(
        n in 20usize..200,
        batch_size in 1usize..50,
        shuffle in proptest::bool::ANY,
        seed_value in 0u64..20,
    ) {
        let seed = shuffle.then_some(seed_value);
        let spec = SyntheticSpec {
            name: "stream-prop".into(),
            seed: 2,
            cardinalities: vec![5, 4],
            zipf_exponent: 0.6,
            planted: vec![PlantedKind::Factorized],
            field_weight_std: 0.2,
            memorized_std: 0.5,
            factorized_std: 0.5,
            latent_dim: 2,
            nonlinear_std: 0.0,
            noise_std: 0.0,
            target_pos_ratio: 0.3,
        };
        let bundle = DatasetBundle::from_spec(spec, 250, 1, 3);
        let range = 0..n.min(bundle.len());
        let mut collected = [Vec::new(), Vec::new()];
        for (slot, prefetch) in [false, true].into_iter().enumerate() {
            crate::prefetch::BatchStream::new(&bundle.data, range.clone(), batch_size, seed)
                .prefetch(prefetch)
                .for_each(|b| {
                    collected[slot].extend_from_slice(&b.fields);
                    collected[slot].extend_from_slice(&b.cross);
                    collected[slot].extend(b.labels.iter().map(|&y| y as u32));
                });
        }
        let [serial, prefetched] = collected;
        prop_assert_eq!(serial, prefetched);
    }

    #[test]
    fn batches_partition_any_range(
        n in 10usize..200,
        batch_size in 1usize..40,
        shuffle in proptest::bool::ANY,
    ) {
        let spec = SyntheticSpec {
            name: "batch-prop".into(),
            seed: 1,
            cardinalities: vec![4, 4],
            zipf_exponent: 0.5,
            planted: vec![PlantedKind::Memorized],
            field_weight_std: 0.2,
            memorized_std: 0.5,
            factorized_std: 0.5,
            latent_dim: 2,
            nonlinear_std: 0.0,
            noise_std: 0.0,
            target_pos_ratio: 0.3,
        };
        let bundle = DatasetBundle::from_spec(spec, 250, 1, 3);
        let range = 0..n.min(bundle.len());
        let seed = shuffle.then_some(9u64);
        let total: usize = BatchIter::new(&bundle.data, range.clone(), batch_size, seed)
            .map(|b| b.len())
            .sum();
        prop_assert_eq!(total, range.len());
    }

    #[test]
    fn split_covers_everything_disjointly(n in 10usize..5000) {
        let s = Split::fractions(n, 0.7, 0.1);
        prop_assert_eq!(s.train.start, 0);
        prop_assert_eq!(s.train.end, s.val.start);
        prop_assert_eq!(s.val.end, s.test.start);
        prop_assert_eq!(s.test.end, n);
        prop_assert!(!s.test.is_empty());
    }

    #[test]
    fn zipf_quantile_is_monotone(
        n in 2u32..50,
        s in 0.0f64..2.0,
        u1 in 0.0f64..1.0,
        u2 in 0.0f64..1.0,
    ) {
        let z = Zipf::new(n, s);
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        prop_assert!(z.quantile(lo) <= z.quantile(hi));
    }
}
