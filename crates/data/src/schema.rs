//! Multi-field schema and second-order pair indexing.

/// Schema of a multi-field categorical dataset: `M` fields, each with a raw
/// cardinality (number of distinct raw values before vocabulary pruning).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    cardinalities: Vec<u32>,
}

impl Schema {
    /// Creates a schema from per-field raw cardinalities.
    ///
    /// # Panics
    /// Panics if any cardinality is zero or there are fewer than two fields.
    pub fn new(cardinalities: Vec<u32>) -> Self {
        assert!(cardinalities.len() >= 2, "schema needs at least two fields");
        assert!(
            cardinalities.iter().all(|&c| c > 0),
            "field cardinality must be positive"
        );
        Self { cardinalities }
    }

    /// Number of fields `M`.
    pub fn num_fields(&self) -> usize {
        self.cardinalities.len()
    }

    /// Raw cardinality of field `f`.
    pub fn cardinality(&self, f: usize) -> u32 {
        self.cardinalities[f]
    }

    /// All per-field cardinalities.
    pub fn cardinalities(&self) -> &[u32] {
        &self.cardinalities
    }

    /// Number of second-order pairs `M(M-1)/2` (paper: `C_M^2`).
    pub fn num_pairs(&self) -> usize {
        let m = self.num_fields();
        m * (m - 1) / 2
    }

    /// Pair indexer over this schema's fields.
    pub fn pairs(&self) -> PairIndexer {
        PairIndexer::new(self.num_fields())
    }
}

/// Bijection between field pairs `(i, j)` with `i < j` and flat indices
/// `0..M(M-1)/2`, in the paper's lexicographic order
/// `(0,1), (0,2), ..., (M-2, M-1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairIndexer {
    num_fields: usize,
}

impl PairIndexer {
    /// Creates an indexer over `num_fields` fields.
    pub fn new(num_fields: usize) -> Self {
        // lint: allow(panic-free, reason="num_fields is validated by FrozenModel::from_bytes before any serve-path PairIndexer is built")
        assert!(num_fields >= 2, "pair indexing needs at least two fields");
        Self { num_fields }
    }

    /// Number of fields.
    pub fn num_fields(&self) -> usize {
        self.num_fields
    }

    /// Number of pairs.
    pub fn num_pairs(&self) -> usize {
        self.num_fields * (self.num_fields - 1) / 2
    }

    /// Flat index of pair `(i, j)` with `i < j`.
    pub fn index_of(&self, i: usize, j: usize) -> usize {
        assert!(i < j && j < self.num_fields, "invalid pair ({i}, {j})");
        // Pairs with first coordinate < i come first:
        // sum_{k<i} (M-1-k) = i*(2M - i - 1)/2
        let m = self.num_fields;
        i * (2 * m - i - 1) / 2 + (j - i - 1)
    }

    /// The pair `(i, j)` at flat index `p`.
    pub fn pair_at(&self, p: usize) -> (usize, usize) {
        // lint: allow(panic-free, reason="serve callers iterate p over 0..num_pairs of the same indexer the layout was built from")
        assert!(p < self.num_pairs(), "pair index {p} out of range");
        let m = self.num_fields;
        let mut i = 0;
        let mut offset = 0;
        loop {
            let row_len = m - 1 - i;
            if p < offset + row_len {
                return (i, i + 1 + (p - offset));
            }
            offset += row_len;
            i += 1;
        }
    }

    /// Iterator over all pairs in flat order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let m = self.num_fields;
        (0..m).flat_map(move |i| (i + 1..m).map(move |j| (i, j)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_basics() {
        let s = Schema::new(vec![10, 20, 30]);
        assert_eq!(s.num_fields(), 3);
        assert_eq!(s.num_pairs(), 3);
        assert_eq!(s.cardinality(2), 30);
    }

    #[test]
    #[should_panic(expected = "at least two fields")]
    fn schema_rejects_single_field() {
        Schema::new(vec![10]);
    }

    #[test]
    fn pair_index_roundtrip() {
        for m in 2..=8 {
            let idx = PairIndexer::new(m);
            let mut seen = vec![false; idx.num_pairs()];
            for (i, j) in idx.iter() {
                let p = idx.index_of(i, j);
                assert!(!seen[p], "duplicate flat index {p}");
                seen[p] = true;
                assert_eq!(idx.pair_at(p), (i, j));
            }
            assert!(seen.iter().all(|&s| s), "missing flat index for m={m}");
        }
    }

    #[test]
    fn pair_order_is_lexicographic() {
        let idx = PairIndexer::new(4);
        let pairs: Vec<_> = idx.iter().collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(idx.index_of(0, 1), 0);
        assert_eq!(idx.index_of(2, 3), 5);
    }

    #[test]
    #[should_panic(expected = "invalid pair")]
    fn index_of_rejects_unordered() {
        PairIndexer::new(4).index_of(2, 1);
    }
}
