//! Scaled-down dataset profiles mirroring the paper's Table II.
//!
//! The real datasets (Criteo 4.6e7 rows, Avazu 4.0e7, iPinYou 1.9e7,
//! Private 8.0e8) are unavailable and far beyond a single-core budget, so
//! each profile keeps the dataset's *distinguishing characteristics* at
//! laptop scale:
//!
//! | profile        | mirrors | kept characteristics |
//! |----------------|---------|----------------------|
//! | `criteo_like`  | Criteo  | many fields, min-count ~20→4 thresholding, pos ratio 0.23 |
//! | `avazu_like`   | Avazu   | one huge-cardinality field (Device_ID analogue), min-count 5→2, pos ratio 0.17 |
//! | `ipinyou_like` | iPinYou | few fields, extremely low positive ratio, mostly-naïve optimal architecture |
//! | `private_like` | Private | small field count, moderate cardinalities, pos ratio 0.17 |
//!
//! `tiny` is a fast profile for unit tests, doc examples and the
//! quickstart; it is not part of the paper reproduction.
//!
//! `giant_vocab` is a memory-scaling profile, also outside the paper
//! reproduction set: its raw key space exceeds 10^7 ids with Zipf-hot
//! (`s = 1.25`) value draws, so only a small head of each field survives
//! min-count thresholding while the embedding *key space* stays enormous.
//! It exists to exercise compositional (hashed) embedding stores and the
//! `embedding` perf section, where dense tables at the raw key space
//! would be the memory wall.

use crate::dataset::DatasetBundle;
use crate::generator::{PlantedKind, SyntheticSpec};

/// A named dataset profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Profile {
    /// Criteo analogue: 12 fields, 66 pairs, balanced planted mix.
    CriteoLike,
    /// Avazu analogue: 10 fields with one device-id-like huge field.
    AvazuLike,
    /// iPinYou analogue: 8 fields, pos ratio 0.02, mostly-none planted mix.
    IpinyouLike,
    /// Private-dataset analogue: 9 fields, 36 pairs.
    PrivateLike,
    /// Small fast profile for tests and examples.
    Tiny,
    /// Memory-scaling profile: >= 10^7 raw keys, Zipf-hot draws. Not part
    /// of the paper reproduction; used by the `embedding` perf section.
    GiantVocab,
}

impl Profile {
    /// All four paper datasets (excludes `Tiny`).
    pub fn paper_datasets() -> [Profile; 4] {
        [
            Profile::CriteoLike,
            Profile::AvazuLike,
            Profile::IpinyouLike,
            Profile::PrivateLike,
        ]
    }

    /// The three public paper datasets (Tables VI and VIII scope).
    pub fn public_datasets() -> [Profile; 3] {
        [
            Profile::CriteoLike,
            Profile::AvazuLike,
            Profile::IpinyouLike,
        ]
    }

    /// Profile name (used in reports).
    pub fn name(&self) -> &'static str {
        match self {
            Profile::CriteoLike => "criteo_like",
            Profile::AvazuLike => "avazu_like",
            Profile::IpinyouLike => "ipinyou_like",
            Profile::PrivateLike => "private_like",
            Profile::Tiny => "tiny",
            Profile::GiantVocab => "giant_vocab",
        }
    }

    /// Total raw key space (sum of field cardinalities before min-count
    /// thresholding). For `GiantVocab` this exceeds 10^7.
    pub fn raw_key_space(&self) -> usize {
        self.spec().cardinalities.iter().map(|&c| c as usize).sum()
    }

    /// The generating spec.
    pub fn spec(&self) -> SyntheticSpec {
        match self {
            Profile::CriteoLike => {
                let cards = vec![30, 200, 500, 80, 12, 60, 800, 40, 8, 150, 300, 100];
                SyntheticSpec {
                    name: self.name().into(),
                    seed: 0xC417E0,
                    zipf_exponent: 1.1,
                    planted: PlantedKind::assign_by_cardinality(&cards, 24, 20),
                    cardinalities: cards,
                    field_weight_std: 0.4,
                    memorized_std: 1.2,
                    factorized_std: 1.0,
                    latent_dim: 4,
                    nonlinear_std: 0.3,
                    noise_std: 0.3,
                    target_pos_ratio: 0.23,
                }
            }
            Profile::AvazuLike => {
                // Field 0 plays Device_ID: far larger cardinality than the
                // rest, driving the cross-vocab blow-up the paper discusses.
                let cards = vec![3000, 150, 80, 40, 500, 25, 200, 60, 12, 8];
                SyntheticSpec {
                    name: self.name().into(),
                    seed: 0xA7A2,
                    zipf_exponent: 1.2,
                    planted: PlantedKind::assign_by_cardinality(&cards, 17, 12),
                    cardinalities: cards,
                    field_weight_std: 0.4,
                    memorized_std: 1.2,
                    factorized_std: 1.0,
                    latent_dim: 4,
                    nonlinear_std: 0.3,
                    noise_std: 0.3,
                    target_pos_ratio: 0.17,
                }
            }
            Profile::IpinyouLike => {
                let cards = vec![60, 120, 30, 300, 16, 80, 40, 10];
                SyntheticSpec {
                    name: self.name().into(),
                    seed: 0x1718,
                    zipf_exponent: 1.0,
                    planted: PlantedKind::assign_by_cardinality(&cards, 6, 3),
                    cardinalities: cards,
                    field_weight_std: 0.5,
                    memorized_std: 1.0,
                    factorized_std: 0.8,
                    latent_dim: 4,
                    nonlinear_std: 0.3,
                    noise_std: 0.3,
                    // The real iPinYou pos ratio (8e-4) would leave too few
                    // positives at this scale for stable AUC; 0.02 keeps the
                    // "rare positives" character while remaining measurable.
                    target_pos_ratio: 0.02,
                }
            }
            Profile::PrivateLike => {
                let cards = vec![300, 100, 50, 400, 30, 150, 20, 60, 10];
                SyntheticSpec {
                    name: self.name().into(),
                    seed: 0x9417,
                    zipf_exponent: 1.1,
                    planted: PlantedKind::assign_by_cardinality(&cards, 12, 10),
                    cardinalities: cards,
                    field_weight_std: 0.4,
                    memorized_std: 1.2,
                    factorized_std: 1.0,
                    latent_dim: 4,
                    nonlinear_std: 0.3,
                    noise_std: 0.3,
                    target_pos_ratio: 0.17,
                }
            }
            Profile::Tiny => {
                let pairs = 6 * 5 / 2; // 15
                SyntheticSpec {
                    name: self.name().into(),
                    seed: 0x717,
                    cardinalities: vec![12; 6],
                    zipf_exponent: 0.8,
                    planted: PlantedKind::assign(5, 5, 5, pairs, 0x717),
                    field_weight_std: 0.3,
                    memorized_std: 1.2,
                    factorized_std: 1.0,
                    latent_dim: 3,
                    nonlinear_std: 0.6,
                    noise_std: 0.2,
                    target_pos_ratio: 0.3,
                }
            }
            Profile::GiantVocab => {
                // Four device/user-id-scale fields plus two small context
                // fields; raw key space 10^7 + 52. The hot Zipf exponent
                // keeps the *materialized* vocabulary (post min-count)
                // small enough to train against as the dense reference
                // while the declared key space stays giant.
                let cards = vec![4_000_000, 3_000_000, 2_400_000, 600_000, 40, 12];
                SyntheticSpec {
                    name: self.name().into(),
                    seed: 0x61A7,
                    zipf_exponent: 1.25,
                    planted: PlantedKind::assign_by_cardinality(&cards, 5, 5),
                    cardinalities: cards,
                    field_weight_std: 0.4,
                    memorized_std: 1.2,
                    factorized_std: 1.0,
                    latent_dim: 4,
                    nonlinear_std: 0.3,
                    noise_std: 0.3,
                    target_pos_ratio: 0.2,
                }
            }
        }
    }

    /// Default number of generated rows.
    pub fn default_rows(&self) -> usize {
        match self {
            Profile::CriteoLike => 40_000,
            Profile::AvazuLike => 40_000,
            Profile::IpinyouLike => 40_000,
            Profile::PrivateLike => 50_000,
            Profile::Tiny => 6_000,
            Profile::GiantVocab => 60_000,
        }
    }

    /// Frequency threshold used when building vocabularies (the paper uses
    /// 20 for Criteo and 5 for Avazu; scaled with the dataset).
    pub fn min_count(&self) -> u32 {
        match self {
            Profile::CriteoLike => 4,
            Profile::AvazuLike => 2,
            Profile::IpinyouLike => 3,
            Profile::PrivateLike => 3,
            Profile::Tiny => 1,
            Profile::GiantVocab => 2,
        }
    }

    /// Generates and encodes the profile's default dataset.
    pub fn bundle(&self, sample_seed: u64) -> DatasetBundle {
        self.bundle_with_rows(self.default_rows(), sample_seed)
    }

    /// Generates with a custom row count (used to shrink tests).
    pub fn bundle_with_rows(&self, rows: usize, sample_seed: u64) -> DatasetBundle {
        DatasetBundle::from_spec(self.spec(), rows, self.min_count(), sample_seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DatasetStats;

    #[test]
    fn all_specs_validate() {
        for p in [
            Profile::CriteoLike,
            Profile::AvazuLike,
            Profile::IpinyouLike,
            Profile::PrivateLike,
            Profile::Tiny,
            Profile::GiantVocab,
        ] {
            p.spec().validate();
        }
    }

    #[test]
    fn giant_vocab_key_space_exceeds_ten_million() {
        assert!(Profile::GiantVocab.raw_key_space() >= 10_000_000);
        let spec = Profile::GiantVocab.spec();
        assert!(spec.zipf_exponent > 1.2, "profile must be Zipf-hot");
    }

    #[test]
    fn giant_vocab_materialized_vocab_is_tiny_fraction_of_key_space() {
        // Zipf-hot draws concentrate on a small head, so the post-min-count
        // vocabulary must be orders of magnitude below the raw key space
        // (this is the gap hashed stores exploit).
        let b = Profile::GiantVocab.bundle_with_rows(4_000, 11);
        assert_eq!(b.data.num_fields, 6);
        let vocab = b.data.orig_vocab as usize;
        assert!(vocab > 0);
        assert!(
            vocab * 100 < Profile::GiantVocab.raw_key_space(),
            "materialized vocab {vocab} too close to raw key space"
        );
    }

    #[test]
    fn tiny_bundle_has_expected_shape() {
        let b = Profile::Tiny.bundle_with_rows(2000, 1);
        assert_eq!(b.data.num_fields, 6);
        assert_eq!(b.data.num_pairs, 15);
        assert_eq!(b.len(), 2000);
        let stats = DatasetStats::compute(&b);
        assert!(
            (0.15..0.45).contains(&stats.pos_ratio),
            "{}",
            stats.pos_ratio
        );
    }

    #[test]
    fn avazu_like_has_dominant_field() {
        let spec = Profile::AvazuLike.spec();
        let max = *spec.cardinalities.iter().max().unwrap();
        let second = {
            let mut c = spec.cardinalities.clone();
            c.sort_unstable();
            c[c.len() - 2]
        };
        assert!(max >= 5 * second, "device-id field must dominate");
    }

    #[test]
    fn ipinyou_like_is_rare_positive() {
        let b = Profile::IpinyouLike.bundle_with_rows(8000, 2);
        let ratio = b.data.pos_ratio(0..b.len());
        assert!(ratio < 0.06, "pos ratio {ratio} should be rare");
        assert!(ratio > 0.0, "need at least one positive");
    }

    #[test]
    fn profile_names_unique() {
        let names: Vec<_> = Profile::paper_datasets().iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }
}
