//! Synthetic multi-field categorical click-log substrate.
//!
//! The paper evaluates on four industrial datasets (Criteo, Avazu, iPinYou
//! and a private Huawei log — Table II) that are not available here. This
//! crate replaces them with *planted-structure* synthetic datasets that
//! exercise exactly the same code paths and make the paper's central claim
//! testable:
//!
//! - every sample is a multi-field categorical row with Zipf-distributed
//!   value frequencies (like real CTR logs);
//! - the ground-truth click logit assigns each field pair one of the three
//!   interaction characters the paper studies — **memorized** (idiosyncratic
//!   per-cross-value effect, not factorizable), **factorized** (low-rank
//!   inner-product effect), or **none** — so an ideal OptInter search should
//!   recover the planted assignment;
//! - preprocessing mirrors the paper: frequency thresholding with an OOV
//!   bucket per field (min-count 20 for Criteo, 5 for Avazu), cross-product
//!   transformation of all `M(M-1)/2` second-order pairs (Eq. 4), and
//!   train/validation/test splits.
//!
//! Entry points: [`profiles`] for the four scaled-down dataset profiles,
//! [`generator::SyntheticGenerator`] for custom workloads,
//! [`dataset::EncodedDataset`] + [`prefetch::BatchStream`] for training
//! (with [`batch::BatchIter`] as the underlying pull-based iterator).

#![forbid(unsafe_code)]

pub mod batch;
pub mod channel;
pub mod cross;
pub mod dataset;
pub mod generator;
pub mod hash;
pub mod prefetch;
pub mod profiles;
pub mod schema;
pub mod stats;
pub mod vocab;
pub mod zipf;

#[cfg(test)]
mod proptests;

pub use batch::{Batch, BatchIter};
pub use dataset::{DatasetBundle, EncodedDataset, Split};
pub use generator::{PlantedKind, RawDataset, SyntheticGenerator, SyntheticSpec};
pub use prefetch::BatchStream;
pub use profiles::Profile;
pub use schema::{PairIndexer, Schema};
