//! Per-field vocabularies with frequency thresholding and OOV bucketing.
//!
//! The paper replaces categorical values appearing fewer than a minimum
//! number of times in the training set with a dummy out-of-vocabulary
//! feature (min-count 20 on Criteo, 5 on Avazu). Local id 0 of every field
//! is the OOV bucket; surviving values get contiguous local ids starting
//! at 1. Local ids are laid out into one global id space (field offsets),
//! so a single embedding table serves all fields.

use crate::schema::Schema;
use std::collections::HashMap;

/// Vocabulary of a single field.
#[derive(Debug, Clone)]
pub struct FieldVocab {
    map: HashMap<u32, u32>,
    size: u32,
}

impl FieldVocab {
    /// Builds from raw-value counts, keeping values with `count >= min_count`.
    ///
    /// Local ids are assigned frequency-then-key: most frequent value gets
    /// id 1, ties broken by ascending raw value. The ordering is a total
    /// order over the retained values, so the assignment is a pure function
    /// of the counts — independent of the `HashMap`'s seed and of the order
    /// rows were counted in. (Frequency-descending also means the hottest
    /// embedding rows cluster at the front of each field's id range, which
    /// keeps frequent lookups cache-friendly.)
    pub fn from_counts(counts: &HashMap<u32, u32>, min_count: u32) -> Self {
        // lint: allow(hash-iter, reason="collected into a Vec and fully sorted before id assignment")
        let mut kept: Vec<(u32, u32)> = counts
            .iter()
            .filter(|&(_, &c)| c >= min_count)
            .map(|(&v, &c)| (v, c))
            .collect();
        kept.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let map: HashMap<u32, u32> = kept
            .iter()
            .enumerate()
            .map(|(i, &(v, _))| (v, i as u32 + 1))
            .collect();
        let size = map.len() as u32 + 1; // +1 for OOV slot 0
        Self { map, size }
    }

    /// Local id of a raw value (0 = OOV).
    pub fn encode(&self, raw: u32) -> u32 {
        self.map.get(&raw).copied().unwrap_or(0)
    }

    /// Vocabulary size including the OOV slot.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Number of retained (non-OOV) values.
    pub fn retained(&self) -> u32 {
        self.size - 1
    }
}

/// Vocabularies for every field plus the global id layout.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    fields: Vec<FieldVocab>,
    offsets: Vec<u32>,
    total: u32,
}

impl Vocabulary {
    /// Builds per-field vocabularies by counting values over the given
    /// (training) rows. `rows` is row-major `[N * M]`.
    pub fn build(schema: &Schema, rows: &[u32], min_count: u32) -> Self {
        let m = schema.num_fields();
        assert_eq!(rows.len() % m, 0, "vocab build: ragged rows");
        let n = rows.len() / m;
        let mut counts: Vec<HashMap<u32, u32>> = vec![HashMap::new(); m];
        for i in 0..n {
            for (f, count) in counts.iter_mut().enumerate() {
                *count.entry(rows[i * m + f]).or_insert(0) += 1;
            }
        }
        let fields: Vec<FieldVocab> = counts
            .iter()
            .map(|c| FieldVocab::from_counts(c, min_count))
            .collect();
        let mut offsets = Vec::with_capacity(m);
        let mut total = 0u32;
        for fv in &fields {
            offsets.push(total);
            total += fv.size();
        }
        Self {
            fields,
            offsets,
            total,
        }
    }

    /// Number of fields.
    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }

    /// Total global vocabulary size (the paper's "#orig value" analogue).
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Per-field vocabulary sizes (OOV included).
    pub fn sizes(&self) -> Vec<u32> {
        self.fields.iter().map(|f| f.size()).collect()
    }

    /// Global offset of field `f`.
    pub fn offset(&self, f: usize) -> u32 {
        self.offsets[f]
    }

    /// Global id of a raw value in field `f`.
    pub fn encode(&self, f: usize, raw: u32) -> u32 {
        self.offsets[f] + self.fields[f].encode(raw)
    }

    /// Local (within-field) id of a raw value.
    pub fn encode_local(&self, f: usize, raw: u32) -> u32 {
        self.fields[f].encode(raw)
    }

    /// Encodes an entire row-major block of rows into global ids.
    pub fn encode_rows(&self, rows: &[u32]) -> Vec<u32> {
        let m = self.num_fields();
        assert_eq!(rows.len() % m, 0, "encode_rows: ragged rows");
        let mut out = Vec::with_capacity(rows.len());
        for chunk in rows.chunks_exact(m) {
            for (f, &raw) in chunk.iter().enumerate() {
                out.push(self.encode(f, raw));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_simple() -> Vocabulary {
        let schema = Schema::new(vec![10, 10]);
        // Field 0: value 1 appears 3x, value 2 once. Field 1: value 5 x4.
        let rows = vec![1, 5, 1, 5, 1, 5, 2, 5];
        Vocabulary::build(&schema, &rows, 2)
    }

    #[test]
    fn threshold_prunes_rare_values() {
        let v = build_simple();
        assert_eq!(v.encode_local(0, 1), 1); // kept
        assert_eq!(v.encode_local(0, 2), 0); // pruned -> OOV
        assert_eq!(v.encode_local(0, 99), 0); // unseen -> OOV
        assert_eq!(v.encode_local(1, 5), 1);
    }

    #[test]
    fn sizes_and_offsets() {
        let v = build_simple();
        assert_eq!(v.sizes(), vec![2, 2]); // OOV + 1 kept value each
        assert_eq!(v.offset(0), 0);
        assert_eq!(v.offset(1), 2);
        assert_eq!(v.total(), 4);
        assert_eq!(v.encode(1, 5), 3);
    }

    #[test]
    fn encode_rows_layout() {
        let v = build_simple();
        let encoded = v.encode_rows(&[1, 5, 2, 7]);
        assert_eq!(encoded, vec![1, 3, 0, 2]);
    }

    #[test]
    fn min_count_one_keeps_everything_seen() {
        let schema = Schema::new(vec![5, 5]);
        let rows = vec![0, 1, 2, 3, 4, 0];
        let v = Vocabulary::build(&schema, &rows, 1);
        assert_eq!(v.sizes(), vec![4, 4]); // 3 distinct + OOV each
    }

    #[test]
    fn ids_are_assigned_frequency_then_key() {
        let mut counts: HashMap<u32, u32> = HashMap::new();
        // Frequencies: 9 -> 5x, {3, 7} -> 3x (tie), 1 -> 2x, 4 -> 1x (pruned).
        counts.insert(9, 5);
        counts.insert(3, 3);
        counts.insert(7, 3);
        counts.insert(1, 2);
        counts.insert(4, 1);
        let v = FieldVocab::from_counts(&counts, 2);
        assert_eq!(v.encode(9), 1); // most frequent first
        assert_eq!(v.encode(3), 2); // tie broken by ascending raw value
        assert_eq!(v.encode(7), 3);
        assert_eq!(v.encode(1), 4);
        assert_eq!(v.encode(4), 0); // below min_count -> OOV
        assert_eq!(v.size(), 5);
    }

    #[test]
    fn deterministic_id_assignment() {
        let schema = Schema::new(vec![100, 100]);
        let rows: Vec<u32> = (0..50).flat_map(|i| [i % 7, i % 5]).collect();
        let a = Vocabulary::build(&schema, &rows, 1);
        let b = Vocabulary::build(&schema, &rows, 1);
        for f in 0..2 {
            for raw in 0..10 {
                assert_eq!(a.encode(f, raw), b.encode(f, raw));
            }
        }
    }
}
