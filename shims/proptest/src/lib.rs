//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of proptest it uses: the [`proptest!`] macro,
//! range/tuple/vec strategies, `prop_map`, and the `prop_assert*` /
//! `prop_assume!` macros. Test cases are generated from a deterministic
//! seed derived from the test name, so failures reproduce across runs.
//! Shrinking is not implemented — a failing case panics with the literal
//! inputs instead, which is enough to paste into a regression test.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::Range;

/// Per-test configuration (mirror of `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; it does not count as a failure.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Deterministic per-test source of randomness.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the generator from a test-name hash so each test has a stable,
    /// distinct stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self(StdRng::seed_from_u64(h))
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A recipe for generating random values (mirror of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The value type produced.
    type Value: Debug;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            source: self,
            map: f,
        }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Strategy yielding a constant value (mirror of `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    //! Collection strategies (mirror of `proptest::collection`).

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Size specification for [`vec`]: a fixed length or a length range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.rng().gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<T>` with element strategy `element` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies (mirror of `proptest::bool`).

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for a fair coin flip.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolStrategy;

    /// Uniform `bool` strategy.
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.rng().gen::<bool>()
        }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case with the
/// generated inputs on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Discards the current case (does not count as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

/// Declares property-based tests. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(..)]` inner attribute followed by `#[test]` functions
/// whose arguments are drawn from strategies (`name in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut test_rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut ran: u32 = 0;
            let mut attempts: u32 = 0;
            while ran < config.cases {
                attempts += 1;
                if attempts > config.cases.saturating_mul(20).max(100) {
                    panic!("proptest: too many rejected cases in {}", stringify!($name));
                }
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut test_rng);)+
                let inputs =
                    [$(format!(concat!(stringify!($arg), " = {:?}"), $arg)),+].join(", ");
                let case = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $arg = $arg;)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match case {
                    ::std::result::Result::Ok(()) => ran += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case failed: {msg}\ninputs: {inputs}");
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    //! Common imports (mirror of `proptest::prelude`).

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, f in -1.5f32..2.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.5..2.5).contains(&f));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuples_and_prop_map(spec in (1usize..4, 0.0f64..1.0).prop_map(|(n, p)| (n * 2, p)) ) {
            let (n, p) = spec;
            prop_assert_eq!(n % 2, 0);
            prop_assert!((0.0..1.0).contains(&p));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        let s = 0usize..1000;
        for _ in 0..32 {
            assert_eq!(
                Strategy::new_value(&s, &mut a),
                Strategy::new_value(&s, &mut b)
            );
        }
    }
}
