//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of criterion it uses: `criterion_group!` /
//! `criterion_main!`, benchmark groups with `sample_size` /
//! `measurement_time`, and `Bencher::iter` / `iter_batched`. Timing is
//! plain wall-clock (`Instant`): each benchmark is warmed up briefly, then
//! run for the configured number of samples, and the median per-iteration
//! time is printed. No statistical analysis, plots, or baselines — good
//! enough to compare kernels and catch order-of-magnitude regressions.

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost (mirror of `criterion::BatchSize`).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Setup output is cheap; run one routine call per setup call.
    SmallInput,
    /// Alias accepted for API parity; treated like `SmallInput`.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Measurement harness passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration duration of the last run, in nanoseconds.
    result_ns: f64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            result_ns: 0.0,
        }
    }

    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a few untimed calls so lazy init and caches settle.
        for _ in 0..2 {
            std::hint::black_box(routine());
        }
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            times.push(start.elapsed().as_nanos() as f64);
        }
        self.result_ns = median(&mut times);
    }

    /// Times `routine` on fresh values from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..2 {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            times.push(start.elapsed().as_nanos() as f64);
        }
        self.result_ns = median(&mut times);
    }
}

fn median(times: &mut [f64]) -> f64 {
    if times.is_empty() {
        return 0.0;
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("nan duration"));
    times[times.len() / 2]
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named set of related benchmarks (mirror of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Accepted for API parity; sampling here is count-based, not time-based.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark and prints its median per-iteration time.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher::new(self.samples);
        f(&mut bencher);
        println!(
            "{}/{:<40} {:>12}",
            self.name,
            id,
            format_ns(bencher.result_ns)
        );
        self
    }

    /// Ends the group (printing already happened per-benchmark).
    pub fn finish(&mut self) {}
}

/// Benchmark driver (mirror of `criterion::Criterion`).
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        let samples = self.default_samples;
        BenchmarkGroup {
            name: name.into(),
            samples,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher::new(self.default_samples);
        f(&mut bencher);
        println!("{:<48} {:>12}", id, format_ns(bencher.result_ns));
        self
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a runner (mirror of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main()` running the listed groups (mirror of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; nothing here parses
            // them, and unknown flags are deliberately ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut b = Bencher::new(5);
        b.iter(|| (0..1000u64).sum::<u64>());
        assert!(b.result_ns > 0.0);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut b = Bencher::new(3);
        b.iter_batched(
            || vec![1u32; 64],
            |v| v.iter().sum::<u32>(),
            BatchSize::SmallInput,
        );
        assert!(b.result_ns >= 0.0);
    }

    #[test]
    fn group_chains_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(1));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
