//! Offline drop-in subset of the `serde` serialization API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of serde it uses: `#[derive(Serialize)]` on plain
//! structs with named fields, plus `serde_json::to_string_pretty`. Instead
//! of upstream's visitor-based `Serializer` machinery, [`Serialize`] here
//! converts directly to an in-memory JSON [`json::Value`] that the
//! `serde_json` shim renders. Deserialization is not implemented — nothing
//! in this workspace reads JSON back.

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// A value that can be converted to JSON (mirror of `serde::Serialize`).
pub trait Serialize {
    /// Converts `self` to a JSON value tree.
    fn to_json_value(&self) -> json::Value;
}

pub mod json {
    //! Minimal JSON document model shared with the `serde_json` shim.

    /// A JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Signed integer.
        Int(i64),
        /// Unsigned integer.
        UInt(u64),
        /// Floating-point number (non-finite values render as `null`).
        Float(f64),
        /// String.
        Str(String),
        /// Array.
        Array(Vec<Value>),
        /// Object with insertion-ordered keys.
        Object(Vec<(String, Value)>),
    }
}

use json::Value;

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

#[cfg(test)]
mod tests {
    use super::json::Value;
    use super::Serialize;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3usize.to_json_value(), Value::UInt(3));
        assert_eq!((-2i64).to_json_value(), Value::Int(-2));
        assert_eq!(1.5f64.to_json_value(), Value::Float(1.5));
        assert_eq!("hi".to_string().to_json_value(), Value::Str("hi".into()));
        assert_eq!(None::<f64>.to_json_value(), Value::Null);
        assert_eq!(Some(2u32).to_json_value(), Value::UInt(2));
    }

    #[test]
    fn collections_nest() {
        let v = vec![[1usize, 2, 3]];
        assert_eq!(
            v.to_json_value(),
            Value::Array(vec![Value::Array(vec![
                Value::UInt(1),
                Value::UInt(2),
                Value::UInt(3)
            ])])
        );
    }
}
