//! Offline drop-in subset of `serde_json`: pretty-printing of values that
//! implement the shim `serde::Serialize`. Only writing is supported —
//! nothing in this workspace parses JSON back.

use serde::json::Value;
use serde::Serialize;
use std::fmt;

/// Serialization error (mirror of `serde_json::Error`).
///
/// The shim's direct value conversion cannot fail, so this is only here to
/// keep `to_string_pretty`'s `Result` signature compatible.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `value` as pretty JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json_value(), 0, &mut out);
    Ok(out)
}

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_json_value(), &mut out);
    Ok(out)
}

fn write_scalar(v: &Value, out: &mut String) -> bool {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            // Match serde_json: non-finite numbers become null, and finite
            // ones always carry a decimal point or exponent.
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(_) | Value::Object(_) => return false,
    }
    true
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, indent: usize, out: &mut String) {
    if write_scalar(v, out) {
        return;
    }
    let pad = "  ".repeat(indent);
    let inner_pad = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&inner_pad);
                write_value(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                out.push_str(&inner_pad);
                write_escaped(key, out);
                out.push_str(": ");
                write_value(item, indent + 1, out);
                out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push('}');
        }
        _ => unreachable!("scalars handled above"),
    }
}

fn write_compact(v: &Value, out: &mut String) {
    if write_scalar(v, out) {
        return;
    }
    match v {
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(key, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
        _ => unreachable!("scalars handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Row {
        name: String,
        auc: f64,
        counts: Option<[usize; 3]>,
    }

    impl Serialize for Row {
        fn to_json_value(&self) -> Value {
            Value::Object(vec![
                ("name".into(), self.name.to_json_value()),
                ("auc".into(), self.auc.to_json_value()),
                ("counts".into(), self.counts.to_json_value()),
            ])
        }
    }

    #[test]
    fn pretty_prints_nested_structs() {
        let rows = vec![
            Row {
                name: "fm".into(),
                auc: 0.75,
                counts: None,
            },
            Row {
                name: "optinter".into(),
                auc: 0.8125,
                counts: Some([3, 2, 1]),
            },
        ];
        let json = to_string_pretty(&rows).unwrap();
        assert!(json.contains("\"name\": \"fm\""));
        assert!(json.contains("\"auc\": 0.75"));
        assert!(json.contains("\"counts\": null"));
        assert!(json.contains("3,\n"));
        assert!(json.starts_with("[\n"));
    }

    #[test]
    fn floats_keep_a_decimal_point_and_escapes_work() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
    }
}
