//! Offline drop-in `#[derive(Serialize)]` for the serde shim.
//!
//! Upstream serde_derive leans on `syn`/`quote`, which are unavailable in
//! this build environment, so this macro walks the raw token stream
//! directly. It supports exactly what the workspace uses: non-generic
//! structs with named fields (doc comments and other attributes on fields
//! are skipped). Anything else is a compile error with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(out) => out,
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error tokens"),
    }
}

fn generate(input: TokenStream) -> Result<TokenStream, String> {
    let (name, fields) = parse_struct(input)?;
    let mut pushes = String::new();
    for field in &fields {
        pushes.push_str(&format!(
            "obj.push(({field:?}.to_string(), \
             ::serde::Serialize::to_json_value(&self.{field})));\n"
        ));
    }
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> ::serde::json::Value {{\n\
                 let mut obj: Vec<(String, ::serde::json::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::json::Value::Object(obj)\n\
             }}\n\
         }}\n"
    );
    out.parse()
        .map_err(|e| format!("serde_derive: generated code failed to parse: {e:?}"))
}

/// Extracts the struct name and its field names from a derive input.
fn parse_struct(input: TokenStream) -> Result<(String, Vec<String>), String> {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility, find the `struct` keyword.
    let mut name = None;
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: consume the following [...] group.
                tokens.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => return Err(format!("expected struct name, got {other:?}")),
                }
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" || id.to_string() == "union" => {
                return Err("serde_derive shim supports only structs with named fields".into());
            }
            _ => {}
        }
    }
    let name = name.ok_or_else(|| "serde_derive shim: no struct found".to_string())?;
    // The next token must be the { ... } field block (no generics in this
    // workspace); tuple structs and generics are rejected explicitly.
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err("serde_derive shim does not support generic structs".into());
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err("serde_derive shim does not support tuple structs".into());
            }
            Some(_) => {}
            None => return Err("serde_derive shim: struct body not found".into()),
        }
    };
    Ok((name, parse_fields(body.stream())?))
}

/// Collects field names from the brace-delimited struct body.
fn parse_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip field attributes (doc comments expand to #[doc = ...]).
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            tokens.next();
        }
        match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Visibility may carry a scope group: pub(crate).
                if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    tokens.next();
                }
            }
            Some(TokenTree::Ident(id)) => {
                match tokens.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => return Err(format!("expected `:` after field `{id}`, got {other:?}")),
                }
                fields.push(id.to_string());
                // Skip the type up to the next top-level comma. Angle
                // brackets nest (Vec<T>); bracket/paren types arrive as
                // single groups, so only `<`/`>` depth needs tracking.
                let mut angle_depth = 0i32;
                for tt in tokens.by_ref() {
                    match tt {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                        _ => {}
                    }
                }
            }
            Some(other) => return Err(format!("unexpected token in struct body: {other:?}")),
        }
    }
    Ok(fields)
}
