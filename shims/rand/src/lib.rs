//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow slice of `rand` it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), the [`Rng`] extension
//! methods (`gen`, `gen_range`, `gen_bool`), uniform distributions and
//! Fisher–Yates shuffling. The backend is xoshiro256++ seeded through
//! SplitMix64 — statistically strong, fast, and fully reproducible from a
//! `u64` seed. Streams differ from upstream `rand`'s ChaCha12-based
//! `StdRng`; nothing in this workspace depends on upstream's exact bits,
//! only on seed-determinism.

use std::ops::Range;

/// Low-level uniform bit source (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1) — the rand 0.8 convention.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`]. Parameterized over the output
/// type (rather than using an associated type) so integer literals in
/// `gen_range(0..3)` unify with the expected result type, as upstream
/// rand's inference does.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); span is far below 2^63
                // for every use in this workspace, so rejection is cheap.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        self.start + (self.end - self.start) * f32::sample_standard(rng)
    }
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

/// User-facing random-value methods (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (mirror of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    ///
    /// Drop-in for `rand::rngs::StdRng` in this workspace: same name, same
    /// `seed_from_u64` construction, deterministic stream per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! Distribution sampling (mirror of `rand::distributions`).

    use super::{Rng, SampleRange};
    use std::ops::Range;

    /// A distribution that can produce values with an [`Rng`].
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: Copy + PartialOrd> Uniform<T> {
        /// Creates the half-open uniform distribution `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new: low must be below high");
            Self { low, high }
        }
    }

    impl<T> Distribution<T> for Uniform<T>
    where
        T: Copy,
        Range<T>: SampleRange<T>,
    {
        #[inline]
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
            rng.gen_range(self.low..self.high)
        }
    }
}

pub mod seq {
    //! Slice utilities (mirror of `rand::seq`).

    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_is_uniform_and_bounded() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.gen_range(0..3usize)] += 1;
        }
        for c in counts {
            assert!((c as f64 / 10_000.0 - 1.0).abs() < 0.05, "{counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
