//! # OptInter — Memorize, Factorize, or be Naïve
//!
//! A from-scratch Rust reproduction of *"Memorize, Factorize, or be Naïve:
//! Learning Optimal Feature Interaction Methods for CTR Prediction"*
//! (ICDE 2022). This umbrella crate re-exports every subsystem:
//!
//! - [`tensor`] — dense matrices and numerics;
//! - [`nn`] — layers with manual backprop, optimizers, embedding tables;
//! - [`data`] — planted-structure synthetic click logs, cross-product
//!   transform, vocabularies, batching;
//! - [`metrics`] — AUC, log-loss, mutual information, t-tests;
//! - [`core`] — the OptInter framework: combination block, Gumbel-softmax
//!   search, two-stage training;
//! - [`models`] — the baseline zoo (LR, Poly2, FM family, FNN, PNNs,
//!   DeepFM, PIN, AutoFIS);
//! - [`serve`] — the low-latency serving path: frozen artifacts,
//!   zero-alloc scoring, micro-batching front door.
//!
//! ## Quickstart
//!
//! ```
//! use optinter::core::{run_two_stage, OptInterConfig, SearchStrategy};
//! use optinter::data::Profile;
//!
//! // Generate a small planted-structure dataset, search for the optimal
//! // per-pair interaction methods, re-train and evaluate.
//! let bundle = Profile::Tiny.bundle_with_rows(2_000, 7);
//! let cfg = OptInterConfig::test_small();
//! let report = run_two_stage(&bundle, &cfg, SearchStrategy::Joint);
//! assert!(report.auc > 0.5);
//! let arch = report.architecture.expect("two-stage yields an architecture");
//! assert_eq!(arch.num_pairs(), bundle.data.num_pairs);
//! ```

pub use optinter_core as core;
pub use optinter_data as data;
pub use optinter_metrics as metrics;
pub use optinter_models as models;
pub use optinter_nn as nn;
pub use optinter_serve as serve;
pub use optinter_tensor as tensor;
