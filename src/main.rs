//! `optinter` — command-line interface to the OptInter pipeline.
//!
//! ```text
//! optinter stats    --profile criteo_like
//! optinter search   --profile tiny [--rows N] [--seed S] [--strategy joint|bilevel|random] [--out arch.txt]
//! optinter train    --profile tiny [--arch MMFN.. | --arch-file arch.txt | --uniform memorize] [--save model.bin]
//! optinter evaluate --profile tiny --load model.bin [--arch-file arch.txt]
//! ```
//!
//! Everything runs on synthetic profile data (deterministic per seed), so
//! the commands compose: `search` writes an architecture file, `train`
//! re-trains it from scratch and saves the weights, `evaluate` reloads and
//! scores the held-out split.

use optinter::core::persist::{
    architecture_from_string, architecture_to_string, load_net_weights, save_net,
};
use optinter::core::{
    net::DataDims, search_architecture, train_fixed, Architecture, Method, OptInterConfig,
    OptInterNet, SearchStrategy,
};
use optinter::data::{DatasetBundle, Profile};
use optinter::metrics::expected_calibration_error;
use optinter::tensor::kernels::{self, Backend};

use optinter::serve::{
    freeze_gated, run_zipf_load, FrozenModel, FrozenScorer, LoadSpec, MicroBatchOptions,
    MonotonicClock, Quant,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Options::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "stats" => cmd_stats(&opts),
        "search" => cmd_search(&opts),
        "train" => cmd_train(&opts),
        "evaluate" => cmd_evaluate(&opts),
        "freeze" => cmd_freeze(&opts),
        "serve" => cmd_serve(&opts),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
optinter — Memorize, Factorize, or be Naive (ICDE 2022) reproduction

USAGE:
  optinter stats    --profile <name>
  optinter search   --profile <name> [--rows N] [--seed S]
                    [--strategy joint|bilevel|random] [--out arch.txt]
  optinter train    --profile <name> [--rows N] [--seed S]
                    [--arch MFN.. | --arch-file f | --uniform memorize|factorize|naive]
                    [--save model.bin]
  optinter evaluate --profile <name> [--rows N] [--seed S]
                    --load model.bin [--arch-file f | --arch MFN..]
  optinter freeze   --profile <name> [--rows N] [--seed S]
                    --load model.bin [--arch-file f | --arch MFN..]
                    --out model.osa [--quant f32|f16|int8] [--max-auc-delta 0.001]
                    [--backend scalar|avx2fma]
  optinter serve    --profile <name> [--rows N] [--seed S]
                    --load-artifact model.osa [--threads N] [--requests N]
                    [--zipf S] [--max-batch N] [--deadline-us U]
                    [--backend scalar|avx2fma]

PROFILES: criteo_like, avazu_like, ipinyou_like, private_like, tiny";

struct Options {
    flags: HashMap<String, String>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut flags = HashMap::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got `{}`", args[i]))?;
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            flags.insert(key.to_string(), value.clone());
            i += 2;
        }
        Ok(Self { flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }

    fn profile(&self) -> Result<Profile, String> {
        let name = self.get("profile").ok_or("missing --profile")?;
        match name {
            "criteo_like" => Ok(Profile::CriteoLike),
            "avazu_like" => Ok(Profile::AvazuLike),
            "ipinyou_like" => Ok(Profile::IpinyouLike),
            "private_like" => Ok(Profile::PrivateLike),
            "tiny" => Ok(Profile::Tiny),
            other => Err(format!("unknown profile `{other}`")),
        }
    }

    fn seed(&self) -> Result<u64, String> {
        match self.get("seed") {
            None => Ok(42),
            Some(s) => s.parse().map_err(|_| format!("bad --seed `{s}`")),
        }
    }

    fn bundle(&self) -> Result<DatasetBundle, String> {
        let profile = self.profile()?;
        let rows = match self.get("rows") {
            None => profile.default_rows(),
            Some(s) => s.parse().map_err(|_| format!("bad --rows `{s}`"))?,
        };
        eprintln!("generating {} ({rows} rows)...", profile.name());
        Ok(profile.bundle_with_rows(rows, self.seed()?))
    }

    fn config(&self, num_pairs_hint: usize) -> Result<OptInterConfig, String> {
        let _ = num_pairs_hint;
        Ok(OptInterConfig {
            seed: self.seed()?,
            ..OptInterConfig::default()
        })
    }

    fn architecture(&self, num_pairs: usize) -> Result<Architecture, String> {
        if let Some(s) = self.get("arch") {
            let arch = architecture_from_string(s)?;
            if arch.num_pairs() != num_pairs {
                return Err(format!(
                    "--arch has {} pairs, dataset has {num_pairs}",
                    arch.num_pairs()
                ));
            }
            return Ok(arch);
        }
        if let Some(path) = self.get("arch-file") {
            let s = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let arch = architecture_from_string(s.trim())?;
            if arch.num_pairs() != num_pairs {
                return Err(format!(
                    "{path} has {} pairs, dataset has {num_pairs}",
                    arch.num_pairs()
                ));
            }
            return Ok(arch);
        }
        let method = match self.get("uniform").unwrap_or("memorize") {
            "memorize" => Method::Memorize,
            "factorize" => Method::Factorize,
            "naive" => Method::Naive,
            other => return Err(format!("unknown --uniform method `{other}`")),
        };
        Ok(Architecture::uniform(method, num_pairs))
    }
}

fn cmd_stats(opts: &Options) -> Result<(), String> {
    use optinter::data::stats::DatasetStats;
    let bundle = opts.bundle()?;
    let stats = DatasetStats::compute(&bundle);
    println!("{}", DatasetStats::header());
    println!("{}", DatasetStats::separator());
    println!("{}", stats.row());
    Ok(())
}

fn cmd_search(opts: &Options) -> Result<(), String> {
    let bundle = opts.bundle()?;
    let cfg = opts.config(bundle.data.num_pairs)?;
    let strategy = match opts.get("strategy").unwrap_or("joint") {
        "joint" => SearchStrategy::Joint,
        "bilevel" => SearchStrategy::BiLevel,
        "random" => SearchStrategy::Random { seed: cfg.seed },
        other => return Err(format!("unknown --strategy `{other}`")),
    };
    eprintln!("searching ({strategy:?})...");
    let outcome = search_architecture(&bundle, &cfg, strategy);
    let s = architecture_to_string(&outcome.architecture);
    println!(
        "architecture {} {}  (planted agreement {:.0}%)",
        outcome.architecture.counts_string(),
        s,
        100.0 * outcome.architecture.agreement_with(&bundle.planted)
    );
    if let Some(path) = opts.get("out") {
        std::fs::write(path, &s).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn cmd_train(opts: &Options) -> Result<(), String> {
    let bundle = opts.bundle()?;
    let cfg = opts.config(bundle.data.num_pairs)?;
    let arch = opts.architecture(bundle.data.num_pairs)?;
    eprintln!("training architecture {}...", arch.counts_string());
    let (mut net, report) = train_fixed(&bundle, &cfg, arch);
    println!(
        "test AUC {:.4}  log-loss {:.4}  params {}",
        report.auc, report.log_loss, report.num_params
    );
    if let Some(path) = opts.get("save") {
        let path = PathBuf::from(path);
        save_net(&mut net, &path).map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!("wrote {} (+ .arch)", path.display());
    }
    Ok(())
}

/// Builds a network from `--load model.bin` plus the architecture flags
/// (or the `.arch` side-file written by `train --save`) — shared by
/// `evaluate` and `freeze`.
fn load_trained_net(opts: &Options, bundle: &DatasetBundle) -> Result<OptInterNet, String> {
    let cfg = opts.config(bundle.data.num_pairs)?;
    let path = PathBuf::from(opts.get("load").ok_or("missing --load")?);
    // Architecture: explicit flag, or the side-file written by `train --save`.
    let arch = if opts.get("arch").is_some() || opts.get("arch-file").is_some() {
        opts.architecture(bundle.data.num_pairs)?
    } else {
        let arch_path = path.with_extension("arch");
        let s = std::fs::read_to_string(&arch_path)
            .map_err(|e| format!("{}: {e}", arch_path.display()))?;
        architecture_from_string(s.trim())?
    };
    let mut net = OptInterNet::new(cfg, DataDims::of(&bundle.data), arch);
    load_net_weights(&mut net, &path).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(net)
}

fn cmd_evaluate(opts: &Options) -> Result<(), String> {
    let bundle = opts.bundle()?;
    let cfg = opts.config(bundle.data.num_pairs)?;
    let mut net = load_trained_net(opts, &bundle)?;
    let mut probs = Vec::new();
    let mut labels = Vec::new();
    optinter::data::BatchStream::new(
        &bundle.data,
        bundle.split.test.clone(),
        cfg.batch_size,
        None,
    )
    .prefetch(cfg.prefetch)
    .for_each(|batch| {
        probs.extend(net.predict(batch));
        labels.extend_from_slice(&batch.labels);
    });
    let eval = optinter::metrics::evaluate(&probs, &labels);
    let ece = expected_calibration_error(&probs, &labels, 10);
    println!(
        "test AUC {:.4}  log-loss {:.4}  ECE {:.4}  ({} examples)",
        eval.auc,
        eval.log_loss,
        ece,
        labels.len()
    );
    Ok(())
}

/// Applies `--backend` (forcing the process-wide kernel backend) and
/// returns the selection in effect. Without the flag the default stands:
/// the `OPTINTER_KERNEL_BACKEND` env override or CPU detection.
fn apply_backend_flag(opts: &Options) -> Result<Backend, String> {
    match opts.get("backend") {
        None => Ok(kernels::active()),
        Some(name) => {
            let b = Backend::parse(name)
                .ok_or_else(|| format!("unknown --backend `{name}` (scalar|avx2fma)"))?;
            if !b.is_supported() {
                return Err(format!("--backend {name} is not supported on this host"));
            }
            kernels::set_active(b);
            Ok(b)
        }
    }
}

fn cmd_freeze(opts: &Options) -> Result<(), String> {
    let bundle = opts.bundle()?;
    let mut net = load_trained_net(opts, &bundle)?;
    let out = PathBuf::from(opts.get("out").ok_or("missing --out")?);
    let quant = match opts.get("quant").unwrap_or("f32") {
        "f32" => Quant::F32,
        "f16" => Quant::F16,
        "int8" => Quant::Int8,
        other => return Err(format!("unknown --quant `{other}` (f32|f16|int8)")),
    };
    let max_auc_delta = match opts.get("max-auc-delta") {
        None => 0.001,
        Some(s) => s
            .parse()
            .map_err(|_| format!("bad --max-auc-delta `{s}`"))?,
    };
    let backend = apply_backend_flag(opts)?;
    eprintln!(
        "freezing ({} rows of held-out eval data, {} kernels)...",
        bundle.split.test.len(),
        backend.name()
    );
    let (frozen, delta) = freeze_gated(
        &mut net,
        &bundle.data,
        bundle.split.test.clone(),
        quant,
        max_auc_delta,
    )
    .map_err(|e| e.to_string())?;
    frozen
        .write_file(&out)
        .map_err(|e| format!("{}: {e}", out.display()))?;
    let bytes = frozen.to_bytes().len();
    println!(
        "froze {} artifact ({} kernels): {} tensors, {} embedding rows hot-first, \
         AUC delta {delta:.6} (gate {max_auc_delta}), {bytes} bytes -> {}",
        quant.name(),
        frozen.backend.name(),
        frozen.tensors.len(),
        frozen.row_map.len(),
        out.display()
    );
    Ok(())
}

fn cmd_serve(opts: &Options) -> Result<(), String> {
    let bundle = opts.bundle()?;
    let path = PathBuf::from(opts.get("load-artifact").ok_or("missing --load-artifact")?);
    let frozen = FrozenModel::read_file(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    if frozen.dims.num_fields != bundle.data.num_fields
        || frozen.dims.num_pairs != bundle.data.num_pairs
    {
        return Err(format!(
            "artifact was frozen for {} fields / {} pairs, dataset has {} / {}",
            frozen.dims.num_fields,
            frozen.dims.num_pairs,
            bundle.data.num_fields,
            bundle.data.num_pairs
        ));
    }
    let parse_usize = |key: &str, default: usize| -> Result<usize, String> {
        match opts.get(key) {
            None => Ok(default),
            Some(s) => s.parse().map_err(|_| format!("bad --{key} `{s}`")),
        }
    };
    let threads = parse_usize("threads", 1)?;
    let requests = parse_usize("requests", 50_000)?;
    let max_batch = parse_usize("max-batch", 32)?;
    let deadline_us = parse_usize("deadline-us", 200)?;
    let zipf_s = match opts.get("zipf") {
        None => 1.05,
        Some(s) => s.parse().map_err(|_| format!("bad --zipf `{s}`"))?,
    };
    apply_backend_flag(opts)?;
    let mut scorer = FrozenScorer::new(&frozen, threads).map_err(|e| e.to_string())?;
    let clock = MonotonicClock::new();
    let mb = MicroBatchOptions {
        queue_slots: 2 * max_batch.max(1),
        max_batch,
        deadline_ns: deadline_us as u64 * 1_000,
    };
    let spec = LoadSpec {
        requests,
        zipf_s,
        seed: opts.seed()?,
        interarrival_ns: 0,
    };
    eprintln!(
        "serving {requests} Zipf(s={zipf_s}) requests, {threads} thread(s), \
         max batch {max_batch}, deadline {deadline_us}us, {} kernels \
         (artifact frozen with {})...",
        scorer.backend().name(),
        scorer.frozen_backend().name()
    );
    let report = run_zipf_load(&mut scorer, &bundle.data, &clock, &mb, &spec);
    let s = report.summary();
    println!(
        "scored {} requests: p50 {:.1}us  p99 {:.1}us  p999 {:.1}us  {:.0} rows/s",
        s.count,
        s.p50_ns / 1_000.0,
        s.p99_ns / 1_000.0,
        s.p999_ns / 1_000.0,
        s.rows_per_sec
    );
    Ok(())
}
