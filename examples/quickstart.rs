//! Quickstart: the full OptInter pipeline on a small synthetic dataset.
//!
//! Generates a planted-structure click log, runs the two-stage algorithm
//! (Gumbel-softmax search, then re-train from scratch), and compares the
//! searched architecture against the planted ground truth and against the
//! all-memorize / all-factorize / all-naïve fixed baselines.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use optinter::core::{
    run_two_stage, train_fixed, Architecture, Method, OptInterConfig, SearchStrategy,
};
use optinter::data::Profile;

fn main() {
    // 1. Data: a 6-field synthetic click log where each field pair is
    //    planted as memorized, factorized, or no-interaction.
    let bundle = Profile::Tiny.bundle_with_rows(8_000, 42);
    println!(
        "dataset: {} rows, {} fields, {} pairs, orig vocab {}, cross vocab {}",
        bundle.len(),
        bundle.data.num_fields,
        bundle.data.num_pairs,
        bundle.data.orig_vocab,
        bundle.data.cross_vocab
    );

    let cfg = OptInterConfig {
        orig_dim: 8,
        cross_dim: 6,
        hidden: vec![32, 16],
        ..OptInterConfig::default()
    };

    // 2. Fixed baselines: one modelling method for every pair.
    for (name, method) in [
        ("all-naive   (FNN-like)", Method::Naive),
        ("all-factorize (OptInter-F)", Method::Factorize),
        ("all-memorize  (OptInter-M)", Method::Memorize),
    ] {
        let arch = Architecture::uniform(method, bundle.data.num_pairs);
        let (_, report) = train_fixed(&bundle, &cfg, arch);
        println!(
            "{name:28} AUC {:.4}  log-loss {:.4}  params {}",
            report.auc, report.log_loss, report.num_params
        );
    }

    // 3. OptInter: search the best method per pair, then re-train.
    let report = run_two_stage(&bundle, &cfg, SearchStrategy::Joint);
    let Some(arch) = report.architecture.as_ref() else {
        eprintln!("two-stage run yielded no architecture; nothing to report");
        return;
    };
    println!(
        "OptInter (search + re-train)  AUC {:.4}  log-loss {:.4}  params {}",
        report.auc, report.log_loss, report.num_params
    );
    println!(
        "searched architecture {}  (planted-truth agreement {:.0}%)",
        arch.counts_string(),
        100.0 * arch.agreement_with(&bundle.planted)
    );
}
