//! Search-strategy comparison (the paper's Table VIII ablation, in miniature):
//! random assignment vs DARTS-style bi-level optimization vs the paper's
//! joint update of network weights and architecture parameters.
//!
//! ```bash
//! cargo run --release --example search_strategies
//! ```

use optinter::core::{search_architecture, train_fixed, OptInterConfig, SearchStrategy};
use optinter::data::Profile;
// lint: allow(wall-clock, reason="example prints wall-clock timings for the reader; nothing reproducible depends on them")
use std::time::Instant;

fn main() {
    let bundle = Profile::Tiny.bundle_with_rows(10_000, 11);
    let cfg = OptInterConfig {
        orig_dim: 8,
        cross_dim: 6,
        hidden: vec![32, 16],
        search_epochs: 2,
        ..OptInterConfig::default()
    };

    println!(
        "{:<22} {:>7} {:>9} {:>12} {:>14} {:>8}",
        "Strategy", "AUC", "LogLoss", "Arch[m,f,n]", "Truth-agree", "Time"
    );
    for (name, strategy) in [
        ("Random (seed 0)", SearchStrategy::Random { seed: 0 }),
        ("Random (seed 1)", SearchStrategy::Random { seed: 1 }),
        ("Bi-level (DARTS-style)", SearchStrategy::BiLevel),
        ("Joint (OptInter)", SearchStrategy::Joint),
    ] {
        // lint: allow(wall-clock, reason="timing column of the demo table; not part of any reproducible result")
        let t0 = Instant::now();
        let outcome = search_architecture(&bundle, &cfg, strategy);
        let agreement = outcome.architecture.agreement_with(&bundle.planted);
        let (_, report) = train_fixed(&bundle, &cfg, outcome.architecture.clone());
        println!(
            "{:<22} {:>7.4} {:>9.4} {:>12} {:>13.0}% {:>8.1?}",
            name,
            report.auc,
            report.log_loss,
            outcome.architecture.counts_string(),
            100.0 * agreement,
            t0.elapsed()
        );
    }

    // The oracle reference: the architecture an all-knowing search would pick.
    let oracle = optinter::core::Architecture::oracle(&bundle.planted);
    let (_, report) = train_fixed(&bundle, &cfg, oracle.clone());
    println!(
        "{:<22} {:>7.4} {:>9.4} {:>12} {:>13.0}%",
        "Oracle (planted truth)",
        report.auc,
        report.log_loss,
        oracle.counts_string(),
        100.0
    );
}
