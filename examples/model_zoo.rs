//! Model zoo tour: trains every baseline of the paper's Table III on one
//! synthetic dataset and prints a leaderboard with taxonomy metadata.
//!
//! ```bash
//! cargo run --release --example model_zoo
//! ```

use optinter::data::Profile;
use optinter::models::{build_model, run_model, BaselineConfig, ModelKind};

fn main() {
    let bundle = Profile::Tiny.bundle_with_rows(10_000, 7);
    let cfg = BaselineConfig {
        embed_dim: 8,
        hidden: vec![32, 16],
        epochs: 3,
        lr: 5e-3,
        ..BaselineConfig::default()
    };

    println!(
        "{:<8} {:<11} {:<7} {:<22} {:<8} {:>7} {:>9} {:>9}",
        "Model", "Category", "Methods", "Factorization fn", "Clf", "AUC", "LogLoss", "Params"
    );
    let mut results = Vec::new();
    for kind in ModelKind::all() {
        let mut model = build_model(kind, &cfg, &bundle.data);
        let taxonomy = model.taxonomy();
        let report = run_model(model.as_mut(), &bundle, &cfg);
        println!(
            "{:<8} {:<11} {:<7} {:<22} {:<8} {:>7.4} {:>9.4} {:>9}",
            report.model,
            taxonomy.category.name(),
            taxonomy.methods,
            taxonomy.factorization_fn,
            taxonomy.classifier,
            report.auc,
            report.log_loss,
            report.num_params
        );
        results.push((report.model.clone(), report.auc));
    }

    results.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nLeaderboard (by AUC):");
    for (rank, (name, auc)) in results.iter().enumerate() {
        println!("  {}. {name:<8} {auc:.4}", rank + 1);
    }
}
