//! Interpretability analysis (paper Sec. III-G, Figs. 5-6): why does
//! OptInter choose the method it chooses for each feature interaction?
//!
//! Computes the mutual information between every pair's cross-product
//! feature and the click label, runs the search, and shows that the chosen
//! method tracks the information content — high-MI pairs get memorized,
//! uninformative pairs get dropped.
//!
//! ```bash
//! cargo run --release --example interpretability
//! ```

use optinter::core::{search_architecture, Method, OptInterConfig, SearchStrategy};
use optinter::data::{PairIndexer, PlantedKind, Profile};
use optinter::metrics::mutual_information_corrected;

fn main() {
    let bundle = Profile::Tiny.bundle_with_rows(12_000, 5);
    let cfg = OptInterConfig {
        orig_dim: 8,
        cross_dim: 6,
        hidden: vec![32, 16],
        search_epochs: 3,
        ..OptInterConfig::default()
    };

    // Mutual information of every pair's cross feature with the label
    // (Eq. 21), bias-corrected for the sample size.
    let train = bundle.split.train.clone();
    let labels: Vec<f32> = bundle.data.labels[train.clone()].to_vec();
    let mi: Vec<f64> = (0..bundle.data.num_pairs)
        .map(|p| {
            let ids: Vec<u32> = train.clone().map(|n| bundle.data.row_cross(n)[p]).collect();
            mutual_information_corrected(&ids, &labels)
        })
        .collect();

    let arch = search_architecture(&bundle, &cfg, SearchStrategy::Joint).architecture;
    let pairs = PairIndexer::new(bundle.data.num_fields);

    println!(
        "{:<8} {:<10} {:>10} {:<10} {:<10}",
        "pair", "fields", "MI (nats)", "searched", "planted"
    );
    let mut rows: Vec<(usize, f64)> = mi.iter().copied().enumerate().collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (p, mi_p) in &rows {
        let (i, j) = pairs.pair_at(*p);
        println!(
            "{:<8} ({}, {})     {:>10.5} {:<10} {:<10}",
            p,
            i,
            j,
            mi_p,
            match arch.method(*p) {
                Method::Memorize => "memorize",
                Method::Factorize => "factorize",
                Method::Naive => "naive",
            },
            bundle.planted[*p].tag()
        );
    }

    // Aggregate: mean MI per selected method (the Figure 5 statistic).
    println!("\nmean MI per selected method:");
    for method in Method::ALL {
        let selected = arch.pairs_with(method);
        if selected.is_empty() {
            continue;
        }
        let mean = selected.iter().map(|&p| mi[p]).sum::<f64>() / selected.len() as f64;
        println!(
            "  {:<10} {:>2} pairs   {:.5} nats",
            method.tag(),
            selected.len(),
            mean
        );
    }

    // And per planted kind, for reference.
    println!("\nmean MI per planted kind (ground truth):");
    for kind in [
        PlantedKind::Memorized,
        PlantedKind::Factorized,
        PlantedKind::None,
    ] {
        let planted: Vec<usize> = bundle
            .planted
            .iter()
            .enumerate()
            .filter(|&(_, &k)| k == kind)
            .map(|(p, _)| p)
            .collect();
        let mean = planted.iter().map(|&p| mi[p]).sum::<f64>() / planted.len().max(1) as f64;
        println!(
            "  {:<10} {:>2} pairs   {:.5} nats",
            kind.tag(),
            planted.len(),
            mean
        );
    }
}
